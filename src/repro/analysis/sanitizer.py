"""The runtime protocol sanitizer: a race detector for the simulated stack.

The endpoint designs live or die by protocol discipline (§4.2, §4.4):
receives are provisioned before the matching sends, a transmission buffer
is untouchable until its signaled completion has been polled, credit is
never driven negative, and the FreeArr/ValidArr circular queues only ever
carry addresses their consumer exposed.  The five built-in designs honour
these invariants implicitly; a *new* backend registered through
:mod:`repro.core.transport.registry` can silently violate them and still
produce a plausible-looking simulation result.

:class:`Sanitizer` is a zero-overhead-when-off checker wired into the
verbs objects (:mod:`repro.verbs.qp` / ``cq`` / ``memory``), the buffer
layer and the transport runtime.  Every hook site guards with
``if sanitizer is not None`` on an attribute that defaults to ``None``,
so an unsanitized run executes exactly the code it executed before.

Checks **observe, never perturb**: no hook yields, charges simulated
time, or touches a metrics counter, so simulated end times and telemetry
snapshots are bit-identical with the sanitizer on or off.  Violations are
recorded with the simulated-time stamp of the offending call and, when
tracing is enabled, mirrored as instant events on a per-node
``sanitizer`` track so they line up with the transport spans in Perfetto.

Enable with :meth:`repro.cluster.Cluster.enable_sanitizer` or
``repro-bench --sanitize``; the rule catalogue is :data:`RUNTIME_RULES`
(see DESIGN.md for the companion static rules).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "ProtocolViolationError",
    "RUNTIME_RULES",
    "Sanitizer",
    "Violation",
    "attach_sanitizer",
]

#: runtime rule catalogue: rule id -> what a report of it means.
RUNTIME_RULES: Dict[str, str] = {
    "qp-state": (
        "work request posted on a Queue Pair that is not ready "
        "(send outside RTS, receive outside INIT/RTS, unconnected RC)"),
    "mr-lifetime": (
        "access to a deregistered memory region, an address outside the "
        "region, or a double deregistration"),
    "buffer-reuse": (
        "registered buffer rewritten while a work request on it is still "
        "in flight — the classic RDMA use-after-free race"),
    "cq-overflow": (
        "completion pushed into a full completion queue (fatal async "
        "event on real hardware)"),
    "cq-double-completion": (
        "completion arrived for a buffer with no work request in flight "
        "(double or spurious completion)"),
    "credit-underflow": (
        "sender transmitted past the absolute credit granted by the "
        "receiver (violates the sent <= credit invariant of §4.4)"),
    "credit-overgrant": (
        "receiver advertised more credit than Receives it has posted "
        "(violates the credit <= posted invariant of §4.4 — the sender "
        "would overrun the receive queue)"),
    "ring-overrun": (
        "circular-queue producer posted more in-flight values than the "
        "remote FreeArr/ValidArr ring has slots"),
    "ring-board-inconsistency": (
        "a FreeArr/ValidArr ring carried a value its consumer never "
        "exposed, or a value arrived that no producer posted"),
}


class ProtocolViolationError(Exception):
    """Raised by :meth:`Sanitizer.assert_clean` (or every violation in
    strict mode) when the run broke a transport protocol invariant."""


@dataclass
class Violation:
    """One recorded protocol violation, stamped in simulated time."""

    rule: str
    message: str
    node_id: int
    time_ns: int
    details: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        return (f"[{self.rule}] t={self.time_ns}ns node={self.node_id}: "
                f"{self.message}")


def _buffer_like(obj: Any) -> bool:
    """Registered-buffer duck test: owned by an MR, at a fixed address.

    Matches :class:`repro.memory.Buffer`; deliberately does not match
    :class:`~repro.core.endpoint.FrameCarrier` (payload only) or plain
    wr_id tags, so untracked WRs cost nothing.
    """
    return hasattr(obj, "mr") and hasattr(obj, "addr")


def _wr_id_buffers(ref: Any) -> Tuple[Any, ...]:
    """Buffer-like objects reachable from a ``wr_id`` (the endpoints put
    the real buffer either as the wr_id itself or inside a tag tuple)."""
    if _buffer_like(ref):
        return (ref,)
    if isinstance(ref, tuple):
        return tuple(el for el in ref if _buffer_like(el))
    return ()


class Sanitizer:
    """Collects protocol violations from the hooks wired through the
    verbs layer and the transport runtime.

    One instance watches one simulation (one :class:`~repro.cluster.Cluster`).
    All state is plain Python bookkeeping keyed by ``(node_id, addr)`` —
    addresses alone are *not* unique because every node's
    :class:`~repro.verbs.memory.AddressSpace` starts at the same base.
    """

    def __init__(self, sim, telemetry=None, strict: bool = False):
        self.sim = sim
        #: optional Telemetry bundle; violations mirror onto its tracer.
        self.telemetry = telemetry
        #: raise ProtocolViolationError at the first violation.
        self.strict = strict
        self.violations: List[Violation] = []
        #: signaled work requests in flight per (node_id, buffer addr).
        self._inflight: Dict[Tuple[int, int], int] = {}
        #: produced-but-unconsumed slots per (consumer node, ring base).
        self._rings: Dict[Tuple[int, int], int] = {}

    # -- reporting ---------------------------------------------------------

    def record(self, rule: str, message: str, node_id: int = -1,
               **details: Any) -> None:
        """Record one violation (never perturbs simulated time)."""
        violation = Violation(rule, message, node_id, self.sim.now, details)
        self.violations.append(violation)
        if self.telemetry is not None and node_id >= 0:
            self.telemetry.tracer.instant(
                node_id, "sanitizer", rule, cat="sanitizer",
                args={"message": message})
        if self.strict:
            raise ProtocolViolationError(str(violation))

    def report(self) -> str:
        """Human-readable summary of every recorded violation."""
        if not self.violations:
            return "sanitizer: clean (0 violations)"
        lines = [f"sanitizer: {len(self.violations)} violation(s)"]
        lines.extend(f"  {v}" for v in self.violations)
        return "\n".join(lines)

    def assert_clean(self) -> None:
        """Raise :class:`ProtocolViolationError` if anything was recorded."""
        if self.violations:
            raise ProtocolViolationError(self.report())

    # -- verbs hooks: queue pairs ------------------------------------------

    def check_post_send(self, qp, wr) -> None:
        """Pre-validation send check (records what post_send will reject,
        plus protocol states the verbs layer itself tolerates)."""
        from repro.verbs.constants import QPState, QPType
        if qp.state is not QPState.RTS:
            self.record(
                "qp-state",
                f"post_send on QP {qp.qpn} in state {qp.state.name}",
                node_id=qp.ctx.node_id, qpn=qp.qpn, state=qp.state.name)
        elif qp.qp_type is QPType.RC and qp.peer is None:
            self.record(
                "qp-state",
                f"post_send on unconnected RC QP {qp.qpn}",
                node_id=qp.ctx.node_id, qpn=qp.qpn)

    def track_post_send(self, qp, wr) -> None:
        """Post-validation: account the signaled WR's buffer in flight."""
        if not wr.signaled:
            return
        buf = wr.buffer if _buffer_like(wr.buffer) else None
        bufs = (buf,) if buf is not None else _wr_id_buffers(wr.wr_id)
        for tracked in bufs:
            key = (tracked.mr.node_id, tracked.addr)
            self._inflight[key] = self._inflight.get(key, 0) + 1

    def check_post_recv(self, qp, wr) -> None:
        from repro.verbs.constants import QPState
        if qp.state not in (QPState.INIT, QPState.RTS):
            self.record(
                "qp-state",
                f"post_recv on QP {qp.qpn} in state {qp.state.name}",
                node_id=qp.ctx.node_id, qpn=qp.qpn, state=qp.state.name)

    def track_post_recv(self, qp, wr) -> None:
        """Receives always complete signaled; track the posted buffer."""
        if _buffer_like(wr.buffer):
            key = (wr.buffer.mr.node_id, wr.buffer.addr)
            self._inflight[key] = self._inflight.get(key, 0) + 1

    # -- verbs hooks: completion queues ------------------------------------

    def on_cq_push(self, cq, wc) -> None:
        """Called before the CQ accepts ``wc`` (so overruns are seen even
        though the verbs layer raises on them)."""
        if len(cq) >= cq.depth:
            self.record(
                "cq-overflow",
                f"completion pushed into full CQ (depth={cq.depth})",
                node_id=cq.node_id, depth=cq.depth)
        for buf in _wr_id_buffers(wc.wr_id):
            key = (buf.mr.node_id, buf.addr)
            if self._inflight.get(key) == 0:
                self.record(
                    "cq-double-completion",
                    f"completion for buffer {buf.addr:#x} with no work "
                    f"request in flight",
                    node_id=cq.node_id, addr=buf.addr, opcode=wc.opcode.name)

    def on_cq_consumed(self, cq, wc) -> None:
        """Called when the application polls ``wc`` out of the CQ; the
        buffer becomes reusable."""
        for buf in _wr_id_buffers(wc.wr_id):
            key = (buf.mr.node_id, buf.addr)
            count = self._inflight.get(key)
            if count:  # untracked (posted before attach) stays untracked
                self._inflight[key] = count - 1

    # -- memory hooks ------------------------------------------------------

    def on_mr_error(self, mr, kind: str, addr: int) -> None:
        """A memory-region access the verbs layer is about to reject."""
        self.record(
            "mr-lifetime",
            f"{kind} on MR lkey={mr.lkey} at {addr:#x}",
            node_id=mr.node_id, lkey=mr.lkey, addr=addr, kind=kind)

    def on_buffer_write(self, buf, op: str) -> None:
        """The application rewrote ``buf`` (fill/reset); illegal while any
        signaled work request on it is still in flight."""
        key = (buf.mr.node_id, buf.addr)
        outstanding = self._inflight.get(key, 0)
        if outstanding > 0:
            self.record(
                "buffer-reuse",
                f"buffer {buf.addr:#x} {op}() with {outstanding} work "
                f"request(s) still in flight",
                node_id=buf.mr.node_id, addr=buf.addr, op=op,
                outstanding=outstanding)

    # -- transport-runtime hooks -------------------------------------------

    def on_credit_consumed(self, ep, conn) -> None:
        """Called after a send endpoint spent one credit on ``conn``."""
        if conn.sent > conn.credit:
            self.record(
                "credit-underflow",
                f"endpoint {ep.endpoint_id} sent {conn.sent} messages to "
                f"node {conn.node} but holds credit for {conn.credit}",
                node_id=ep.ctx.node_id, endpoint=ep.endpoint_id,
                dest=conn.node, sent=conn.sent, credit=conn.credit)

    def on_credit_issued(self, conn, value: int, node_id: int = -1) -> None:
        """Called when a receive endpoint advertises absolute credit
        ``value`` on ``conn`` (credit word or credit datagram)."""
        if value > conn.posted:
            if node_id < 0 and conn.qp is not None:
                node_id = conn.qp.ctx.node_id
            self.record(
                "credit-overgrant",
                f"receiver advertised credit {value} to endpoint "
                f"{conn.endpoint} with only {conn.posted} Receives posted",
                node_id=node_id, endpoint=conn.endpoint,
                value=value, posted=conn.posted)

    def on_ring_produce(self, qp, cursor) -> None:
        """A value was produced into the remote ring behind ``cursor``."""
        peer = qp.peer
        if peer is None:  # rings ride RC QPs; tolerate exotic callers
            return
        key = (peer.node_id, cursor.base)
        outstanding = self._rings.get(key, 0) + 1
        self._rings[key] = outstanding
        if outstanding > cursor.cap:
            self.record(
                "ring-overrun",
                f"ring at node {peer.node_id} base {cursor.base:#x} has "
                f"{outstanding} in-flight values for {cursor.cap} slots",
                node_id=qp.ctx.node_id, base=cursor.base,
                outstanding=outstanding, cap=cursor.cap)

    def on_ring_consume(self, board, region_base: int, key: Any,
                        value: int) -> None:
        """A produced value reached its consumer board; validate it."""
        node = board.mr.node_id
        ring_key = (node, region_base)
        outstanding = self._rings.get(ring_key, 0) - 1
        if outstanding < 0:
            self.record(
                "ring-board-inconsistency",
                f"{board.name} at {region_base:#x} received value "
                f"{value:#x} that no producer posted",
                node_id=node, base=region_base, value=value)
            outstanding = 0
        self._rings[ring_key] = outstanding
        validator = board.validator
        if validator is not None and not validator(key, value):
            self.record(
                "ring-board-inconsistency",
                f"{board.name} carried value {value:#x} the consumer "
                f"never exposed (peer key {key!r})",
                node_id=node, base=region_base, value=value, key=key)


# -- wiring ----------------------------------------------------------------

def attach_sanitizer(fabric, sanitizer: Sanitizer) -> Sanitizer:
    """Wire ``sanitizer`` into every verbs object of ``fabric`` — existing
    contexts, CQs and memory regions, plus (via the fabric attribute) any
    created afterwards.  Idempotent."""
    fabric.sanitizer = sanitizer
    for ctx in fabric.verbs_contexts.values():
        attach_context(ctx, sanitizer)
    return sanitizer


def attach_context(ctx, sanitizer: Optional[Sanitizer]) -> None:
    """Wire one :class:`~repro.verbs.device.VerbsContext` (and everything
    it already created) to ``sanitizer``."""
    ctx.sanitizer = sanitizer
    ctx.memory.sanitizer = sanitizer
    for mr in ctx.memory.regions():
        mr.sanitizer = sanitizer
    for cq in ctx._cqs:
        cq.sanitizer = sanitizer
