"""Correctness tooling for the simulated RDMA stack.

Three prongs (see DESIGN.md "Analysis & sanitizer" and "Protocol model
checking"):

* :mod:`repro.analysis.linter` — AST-based protocol lint over
  ``src/repro`` (``python -m repro.analysis`` / ``pytest --repro-lint``);
* :mod:`repro.analysis.sanitizer` — the runtime race detector enabled by
  ``Cluster.enable_sanitizer()`` / ``repro-bench --sanitize``;
* :mod:`repro.analysis.model` — the bounded protocol model checker
  (``python -m repro.analysis model`` / ``pytest --repro-model``),
  verifying each endpoint kind's flow-control protocol exhaustively at
  small instance sizes.
"""

from repro.analysis.linter import (
    STATIC_RULES,
    LintViolation,
    lint_paths,
    lint_source,
    package_root,
    parse_select,
)
from repro.analysis.sanitizer import (
    RUNTIME_RULES,
    ProtocolViolationError,
    Sanitizer,
    Violation,
    attach_sanitizer,
)

__all__ = [
    "LintViolation",
    "ProtocolViolationError",
    "RUNTIME_RULES",
    "STATIC_RULES",
    "Sanitizer",
    "Violation",
    "attach_sanitizer",
    "lint_paths",
    "lint_source",
    "package_root",
    "parse_select",
]
