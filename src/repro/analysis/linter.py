"""AST-based protocol lint rules over ``src/repro``.

The static half of the analysis subsystem: rules that catch protocol and
determinism hazards *before* a simulation runs.  Each rule has a stable
id (``VS1xx``), a scope (which package paths it applies to) and a small
exclusion list for the legitimate counterexamples (e.g. the stage wiring
is *supposed* to reach the fabric).

Rules are deliberately syntactic — they inspect one file's AST with no
type inference — so a clean pass is cheap enough for CI and the pytest
hook, and a new rule is one visitor function plus a catalogue entry (see
DESIGN.md "Adding a rule").

Run with ``python -m repro.analysis`` or ``pytest --repro-lint``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "LintViolation",
    "STATIC_RULES",
    "lint_paths",
    "lint_source",
    "package_root",
    "parse_select",
]

#: static rule catalogue: rule id -> one-line description.
STATIC_RULES: Dict[str, str] = {
    "VS101": (
        "endpoint code reaches fabric/NIC internals instead of the "
        "verbs API (core/ must stay a verbs client)"),
    "VS102": (
        "send posted before receive provisioning on the same path "
        "(the paper's Receive-before-Send rule, §4.4)"),
    "VS103": (
        "buffer payload/length written directly, bypassing the "
        "registered MemoryRegion interface (use Buffer.fill/deposit)"),
    "VS104": (
        "nondeterminism source (wall-clock time, unseeded randomness, "
        "uuid/secrets) inside simulation-ordered code"),
    "VS105": (
        "iteration directly over a set (unordered: breaks the "
        "determinism suite; sort or use an ordered container)"),
    "VS106": (
        "Fabric.route()/route_mcast() called outside fabric/ and "
        "verbs/ (topology bypass: go through the verbs API so the "
        "switch-path model applies)"),
    "VS107": (
        "tracer event emitted without a simulated-ns timestamp "
        "(pass ts_ns= or the event lands at poll time, skewing the "
        "critical-path analyzer)"),
    "VS108": (
        "Packet/PacketTrain constructed directly outside fabric/ "
        "(use fabric.packet.make_train so RC messages are segmented "
        "into MTU trains consistently)"),
    "VS109": (
        "self-referential closure in simulation code (a nested "
        "callback capturing itself or stored onto the object it "
        "captures creates a reference cycle the event loop keeps "
        "alive — the _HopWalk leak class)"),
    "VS110": (
        "raw design-string dispatch (DESIGNS[...] / DESIGNS.get) "
        "outside the policy layer (go through resolve_design or a "
        "StagePlan so eager validation and policy planning stay the "
        "single dispatch path)"),
}


@dataclass(frozen=True)
class LintViolation:
    """One static-analysis finding."""

    rule: str
    path: str
    line: int
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line} {self.rule} {self.message}"


def package_root() -> Path:
    """The ``src/repro`` directory this installation lints by default."""
    return Path(__file__).resolve().parents[1]


def _relative_name(path: Path) -> str:
    """Path relative to the ``repro`` package (rule scopes key on it)."""
    parts = path.resolve().parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i + 1:])
    return path.name


# -- rule scopes -----------------------------------------------------------

#: directories whose code runs inside (and orders) the simulation.
_SIM_ORDERED = ("sim/", "core/", "verbs/", "fabric/", "memory/")


def _in_scope(rel: str, prefixes: Sequence[str],
              exclude: Sequence[str] = ()) -> bool:
    return rel.startswith(tuple(prefixes)) and rel not in exclude


# -- individual rules ------------------------------------------------------

def _rule_vs101(rel: str, tree: ast.AST) -> Iterable[Tuple[int, str]]:
    """Endpoint code touching fabric/NIC internals (VS101)."""
    # The stage wiring legitimately builds on the Fabric, and the policy
    # layer reads cluster/fabric telemetry to plan stages; everything
    # else under core/ must speak verbs only.
    if not _in_scope(rel, ("core/",),
                     exclude=("core/stage.py", "core/policy.py")):
        return
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            if node.module.startswith("repro.fabric"):
                yield (node.lineno,
                       f"imports {node.module} (fabric internals)")
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.startswith("repro.fabric"):
                    yield (node.lineno,
                           f"imports {alias.name} (fabric internals)")
        elif isinstance(node, ast.Attribute) and node.attr in ("fabric",
                                                              "nic"):
            yield (node.lineno,
                   f"touches .{node.attr} (use the verbs API)")


_RECV_PROVISIONERS = frozenset(
    {"post_recv", "post_recv_buffer", "post_recv_slots"})


def _rule_vs102(rel: str, tree: ast.AST) -> Iterable[Tuple[int, str]]:
    """Send posted before receive provisioning in one function (VS102)."""
    if not _in_scope(rel, ("core/",)):
        return
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        first_send: Optional[int] = None
        first_recv: Optional[int] = None
        for call in ast.walk(node):
            if not (isinstance(call, ast.Call)
                    and isinstance(call.func, ast.Attribute)):
                continue
            name = call.func.attr
            if name == "post_send" and first_send is None:
                first_send = call.lineno
            elif name in _RECV_PROVISIONERS and first_recv is None:
                first_recv = call.lineno
        if (first_send is not None and first_recv is not None
                and first_send < first_recv):
            yield (first_send,
                   f"post_send at line {first_send} precedes receive "
                   f"provisioning at line {first_recv} in {node.name}()")


def _rule_vs103(rel: str, tree: ast.AST) -> Iterable[Tuple[int, str]]:
    """Raw buffer field writes outside the buffer/verbs layers (VS103)."""
    # The verbs layer *is* the NIC (it deposits arriving payloads), and
    # the buffer layer implements fill/deposit/reset themselves.
    if rel.startswith(("verbs/", "memory/")) or not rel.endswith(".py"):
        return
    for node in ast.walk(tree):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            if not (isinstance(target, ast.Attribute)
                    and target.attr in ("payload", "length")):
                continue
            base = target.value
            if isinstance(base, ast.Name) and base.id == "self":
                continue  # an object updating its own fields
            yield (target.lineno,
                   f"direct write to .{target.attr} bypasses the "
                   f"registered MemoryRegion (use Buffer.fill/deposit)")


#: modules whose import into sim-ordered code is a determinism hazard.
_NONDET_MODULES = frozenset({"time", "uuid", "secrets"})
#: module-level functions drawing on hidden global state.
_NONDET_CALLS = {
    "time": None,        # every function of time is wall clock
    "random": {"Random", "SystemRandom"},  # seeded instances are fine
    "uuid": None,
    "secrets": None,
    "os": {"urandom"},   # flag only os.urandom, not os.path etc.
    "datetime": {"now", "utcnow", "today"},
}


def _rule_vs104(rel: str, tree: ast.AST) -> Iterable[Tuple[int, str]]:
    """Nondeterminism sources in simulation-ordered code (VS104)."""
    if not _in_scope(rel, _SIM_ORDERED):
        return
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in _NONDET_MODULES:
                    yield (node.lineno,
                           f"import {alias.name} (wall clock / entropy has "
                           f"no place in simulated time)")
        elif isinstance(node, ast.ImportFrom) and node.module:
            root = node.module.split(".")[0]
            if root in _NONDET_MODULES or root == "random":
                yield (node.lineno,
                       f"from {node.module} import ... (unseeded/wall-"
                       f"clock source)")
        elif isinstance(node, ast.Call):
            func = node.func
            if not (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)):
                continue
            module, attr = func.value.id, func.attr
            if module == "os" and attr == "urandom":
                yield (node.lineno, "os.urandom() is nondeterministic")
            elif module == "random" and attr not in _NONDET_CALLS["random"]:
                yield (node.lineno,
                       f"random.{attr}() uses the unseeded global RNG "
                       f"(use a seeded random.Random instance)")
            elif module == "time":
                yield (node.lineno,
                       f"time.{attr}() reads the wall clock")
            elif module == "datetime" and attr in _NONDET_CALLS["datetime"]:
                yield (node.lineno,
                       f"datetime.{attr}() reads the wall clock")


def _rule_vs105(rel: str, tree: ast.AST) -> Iterable[Tuple[int, str]]:
    """Direct iteration over sets (VS105)."""
    if not _in_scope(rel, _SIM_ORDERED):
        return

    def is_set_expr(expr: ast.expr) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        return (isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Name)
                and expr.func.id in ("set", "frozenset"))

    for node in ast.walk(tree):
        iters: List[ast.expr] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iters.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            iters.extend(gen.iter for gen in node.generators)
        for it in iters:
            if is_set_expr(it):
                yield (it.lineno,
                       "iterating a set directly: ordering is undefined "
                       "(sort it, or iterate an ordered container)")


#: paths that legitimately drive the fabric directly: the baselines
#: model whole transports (kernel TCP, MPI) on raw fabric routes, and
#: the kernel microbenchmark measures the routing hot path itself.
_VS106_EXEMPT = ("baselines/", "bench/kernel.py")


def _rule_vs106(rel: str, tree: ast.AST) -> Iterable[Tuple[int, str]]:
    """Direct Fabric.route*/route_mcast calls outside fabric//verbs/
    (VS106).

    Everything above the verbs layer must send through Queue Pairs —
    a raw ``fabric.route(...)`` bypasses the topology's switch-path
    model (trunk ports, multicast replication point) as well as the
    NIC's QP-context cache accounting.
    """
    if rel.startswith(("fabric/", "verbs/")) or rel.startswith(_VS106_EXEMPT):
        return
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("route", "route_mcast")):
            continue
        base = node.func.value
        if ((isinstance(base, ast.Name) and base.id == "fabric")
                or (isinstance(base, ast.Attribute)
                    and base.attr == "fabric")):
            yield (node.lineno,
                   f"calls Fabric.{node.func.attr}() directly (topology "
                   f"bypass; send through the verbs API)")


#: tracer methods whose 4th positional parameter is the ``ts_ns`` stamp.
_TS_EVENT_METHODS = frozenset({"begin", "end", "instant", "counter"})


def _rule_vs107(rel: str, tree: ast.AST) -> Iterable[Tuple[int, str]]:
    """Timestamp-less tracer events in simulation-ordered code (VS107).

    ``Tracer.begin/end/instant/counter`` default ``ts_ns`` to the *call
    moment* (``sim.now``).  Instrumentation sites inside the simulation
    frequently record an event for an earlier or later instant (a span
    reconstructed after a poll, a stall noticed on wakeup); relying on
    the default silently stamps those at emission time, which skews the
    causal record the ``repro.obs`` critical-path analyzer consumes.
    Sites must pass the timestamp explicitly — positionally (the 4th
    argument) or as ``ts_ns=`` — or use ``complete``/``span``, whose
    start times are always explicit.
    """
    if not _in_scope(rel, _SIM_ORDERED):
        return
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _TS_EVENT_METHODS):
            continue
        base = node.func.value
        mentions_tracer = (
            (isinstance(base, ast.Name) and "tracer" in base.id)
            or (isinstance(base, ast.Attribute) and "tracer" in base.attr))
        if not mentions_tracer:
            continue  # e.g. registry.counter(name): a metrics instrument
        has_ts = (len(node.args) >= 4
                  or any(kw.arg == "ts_ns" for kw in node.keywords))
        if not has_ts:
            yield (node.lineno,
                   f"tracer.{node.func.attr}() without ts_ns: the event "
                   f"is stamped at emission time, not the instant it "
                   f"describes (pass ts_ns= explicitly)")


def _rule_vs108(rel: str, tree: ast.AST) -> Iterable[Tuple[int, str]]:
    """Direct Packet/PacketTrain construction outside fabric/ (VS108).

    ``make_train`` is the one place that knows how a message's length
    and transport turn into wire bytes and MTU-train segmentation; a
    hand-rolled ``Packet(...)`` elsewhere silently ships a one-packet
    train for a multi-MTU RC message, undercounting serialization
    boundaries under ``REPRO_TRAINS=0`` and skewing packet accounting.
    """
    if rel.startswith("fabric/"):
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name in ("Packet", "PacketTrain"):
            yield (node.lineno,
                   f"constructs {name} directly (use "
                   f"fabric.packet.make_train for MTU-train segmentation)")


#: sites where a self-referential callback is the accepted idiom (each
#: breaks its cycle by hand or is a one-shot whose cycle dies with the
#: run; reviewed when the rule landed).
_VS109_EXEMPT: Tuple[str, ...] = ()


def _rule_vs109(rel: str, tree: ast.AST) -> Iterable[Tuple[int, str]]:
    """Self-referential closures in simulation code (VS109).

    Two shapes of the ``_HopWalk`` leak class (a per-hop walker that
    rescheduled itself held its whole capture set alive across the run):

    * a nested function that references *its own name* — the closure
      cell then points back at the function object, a cycle only the
      cyclic GC can reclaim, so every captured local (buffers, QPs,
      endpoints) outlives its last event until a collection happens;
    * a closure capturing ``self`` that is stored onto ``self`` (attr
      assignment, or appended/registered into one of ``self``'s
      containers) — ``self -> attr -> closure -> self``.

    Both are fixed the same way: capture exactly what the callback
    needs (locals, not ``self``), or clear the stored reference when
    the protocol step retires.
    """
    if not _in_scope(rel, ("sim/", "fabric/", "core/"),
                     exclude=_VS109_EXEMPT):
        return
    for meth in ast.walk(tree):
        if not isinstance(meth, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        #: nested defs of this function that capture ``self``.
        captures_self: Dict[str, int] = {}
        for node in ast.iter_child_nodes(meth):
            for inner in ast.walk(node):
                if not isinstance(inner, (ast.FunctionDef,
                                          ast.AsyncFunctionDef)):
                    continue
                refs_self = False
                for ref in ast.walk(inner):
                    if ref is inner:
                        continue
                    if (isinstance(ref, ast.Name)
                            and isinstance(ref.ctx, ast.Load)):
                        if ref.id == inner.name:
                            yield (inner.lineno,
                                   f"nested function {inner.name}() "
                                   f"references itself: the closure cell "
                                   f"cycle keeps every captured local "
                                   f"alive until a GC pass (pass the "
                                   f"callback explicitly instead)")
                            break
                        if ref.id == "self":
                            refs_self = True
                else:
                    if refs_self:
                        captures_self[inner.name] = inner.lineno
        if not captures_self:
            continue

        def self_attr(expr: ast.expr) -> bool:
            return (isinstance(expr, ast.Attribute)
                    and isinstance(expr.value, ast.Name)
                    and expr.value.id == "self")

        for node in ast.walk(meth):
            stored: Optional[str] = None
            if isinstance(node, ast.Assign):
                if (isinstance(node.value, ast.Name)
                        and node.value.id in captures_self
                        and any(self_attr(t) or (
                            isinstance(t, ast.Subscript)
                            and self_attr(t.value))
                            for t in node.targets)):
                    stored = node.value.id
            elif (isinstance(node, ast.Call)
                  and isinstance(node.func, ast.Attribute)
                  and node.func.attr in ("append", "add", "insert",
                                         "register", "on")
                  and self_attr(node.func.value)):
                for arg in node.args:
                    if (isinstance(arg, ast.Name)
                            and arg.id in captures_self):
                        stored = arg.id
                        break
            if stored is not None:
                yield (node.lineno,
                       f"closure {stored}() captures self and is stored "
                       f"back onto self (reference cycle: self -> "
                       f"container -> closure -> self; capture the "
                       f"fields the callback needs instead)")


#: the only modules that may dispatch on raw design strings: the design
#: registry itself and the policy layer built directly on it.
_VS110_ALLOWED = ("core/designs.py", "core/policy.py")


def _rule_vs110(rel: str, tree: ast.AST) -> Iterable[Tuple[int, str]]:
    """Raw design-string dispatch outside the policy layer (VS110).

    ``DESIGNS[name]`` (or ``DESIGNS.get(name)``) scattered through the
    tree is how the pre-policy code wired a design choice to a stage:
    unvalidated strings flowed through three layers before a KeyError
    surfaced deep in stage setup.  Everything outside the registry and
    the policy layer must resolve through
    :func:`repro.core.designs.resolve_design` (eager, with a helpful
    error) or receive a planned :class:`~repro.core.policy.StagePlan`.
    """
    if not rel.endswith(".py") or rel in _VS110_ALLOWED:
        return
    for node in ast.walk(tree):
        if (isinstance(node, ast.Subscript)
                and isinstance(node.value, ast.Name)
                and node.value.id == "DESIGNS"):
            yield (node.lineno,
                   "DESIGNS[...] subscript outside the policy layer "
                   "(use resolve_design() or pass a StagePlan)")
        elif (isinstance(node, ast.Call)
              and isinstance(node.func, ast.Attribute)
              and node.func.attr == "get"
              and isinstance(node.func.value, ast.Name)
              and node.func.value.id == "DESIGNS"):
            yield (node.lineno,
                   "DESIGNS.get(...) outside the policy layer "
                   "(use resolve_design() or pass a StagePlan)")


_RULES: Dict[str, Callable[[str, ast.AST], Iterable[Tuple[int, str]]]] = {
    "VS101": _rule_vs101,
    "VS102": _rule_vs102,
    "VS103": _rule_vs103,
    "VS104": _rule_vs104,
    "VS105": _rule_vs105,
    "VS106": _rule_vs106,
    "VS107": _rule_vs107,
    "VS108": _rule_vs108,
    "VS109": _rule_vs109,
    "VS110": _rule_vs110,
}


def parse_select(spec: Optional[str]) -> Optional[Tuple[str, ...]]:
    """Parse and validate a comma-separated rule-id selection.

    Returns ``None`` for "run everything" (no selection given).  Raises
    ``ValueError`` on unknown rule ids or an empty selection — a typo'd
    ``--select VS999`` must not silently lint nothing and exit green.
    Both the CLI and the pytest plugin route selections through here, so
    the two entry points agree on what a selection means.
    """
    if spec is None:
        return None
    rules = tuple(part.strip() for part in spec.split(",") if part.strip())
    if not rules:
        raise ValueError("empty rule selection: nothing would be linted")
    unknown = [r for r in rules if r not in _RULES]
    if unknown:
        raise ValueError(
            f"unknown lint rule(s): {', '.join(unknown)} "
            f"(known: {', '.join(_RULES)})")
    return rules


# -- driver ----------------------------------------------------------------

def lint_source(rel: str, source: str, path: Optional[str] = None,
                select: Optional[Sequence[str]] = None
                ) -> List[LintViolation]:
    """Lint one file's source text.  ``rel`` is the path relative to the
    ``repro`` package (rule scopes key on it); ``path`` is what reports
    display (defaults to ``rel``)."""
    shown = path or rel
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [LintViolation("VS000", shown, exc.lineno or 0,
                              f"syntax error: {exc.msg}")]
    violations: List[LintViolation] = []
    for rule_id, rule in _RULES.items():
        if select and rule_id not in select:
            continue
        for line, message in rule(rel, tree):
            violations.append(LintViolation(rule_id, shown, line, message))
    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    return violations


def lint_paths(paths: Iterable[Path],
               select: Optional[Sequence[str]] = None
               ) -> List[LintViolation]:
    """Lint every ``.py`` file under the given files/directories."""
    violations: List[LintViolation] = []
    for root in paths:
        root = Path(root)
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for file in files:
            rel = _relative_name(file)
            source = file.read_text(encoding="utf-8")
            violations.extend(
                lint_source(rel, source, path=str(file), select=select))
    return violations
