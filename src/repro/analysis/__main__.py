"""CLI driver: ``python -m repro.analysis [model] ...``.

Two entry points share the module:

* ``python -m repro.analysis [paths...]`` — static VS1xx protocol lint
  over ``src/repro`` (or the given files/directories); exits non-zero
  if anything is found.
* ``python -m repro.analysis model [--all-kinds|--kind K] [--bound
  k=v,...]`` — the bounded protocol model checker: verifies every
  registered endpoint kind's flow-control protocol for deadlock-
  freedom, credit conservation, ring consistency and eventual delivery,
  and renders counterexamples as Chrome trace JSON.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.linter import (
    STATIC_RULES,
    LintViolation,
    lint_paths,
    package_root,
    parse_select,
)
from repro.analysis.sanitizer import RUNTIME_RULES

__all__ = ["main", "model_main"]


def model_main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.analysis model`` — check protocol models."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis model",
        description="Bounded explicit-state model checking of the "
                    "shuffle flow-control protocols (deadlock-freedom, "
                    "credit conservation, ring consistency, eventual "
                    "delivery).",
    )
    parser.add_argument("--kind", action="append", dest="kinds",
                        metavar="KIND",
                        help="endpoint kind to check (repeatable; "
                             "default: every modeled kind)")
    parser.add_argument("--all-kinds", action="store_true",
                        help="check every endpoint kind that exposes a "
                             "protocol model (the default)")
    parser.add_argument("--bound", metavar="SPEC", default="",
                        help="exploration bound overrides, e.g. "
                             "'messages=4,window=2,qp_errors=1'")
    parser.add_argument("--no-por", action="store_true",
                        help="disable the partial-order reduction "
                             "(explore every interleaving directly)")
    parser.add_argument("--trace-dir", metavar="DIR",
                        help="write counterexample traces (Chrome trace "
                             "JSON, Perfetto-loadable) into DIR")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable verdicts on stdout")
    parser.add_argument("--list-kinds", action="store_true",
                        help="print the modeled endpoint kinds and exit")
    args = parser.parse_args(argv)

    from repro.analysis.model import (
        check_kind,
        extract_model,
        modeled_kinds,
        parse_bound,
    )
    from repro.analysis.model.trace import write_counterexample

    known = list(modeled_kinds())
    if args.list_kinds:
        for kind in known:
            model = extract_model(kind)
            print(f"{kind}  ({model.family} family)")
        return 0

    kinds = args.kinds if args.kinds else known
    reachable = modeled_kinds(include_test=True)
    unknown = [k for k in kinds if k not in reachable]
    if unknown:
        parser.error(f"no protocol model for: {', '.join(unknown)} "
                     f"(modeled: {', '.join(known)})")
    try:
        bound = parse_bound(args.bound)
    except ValueError as exc:
        parser.error(str(exc))

    results = []
    failed = False
    for kind in kinds:
        result = check_kind(kind, bound, por=not args.no_por)
        results.append(result)
        failed = failed or not result.passed
        if args.trace_dir:
            for witness in result.witnesses:
                path = write_counterexample(result.model, witness,
                                            args.trace_dir)
                if not args.json:
                    print(f"  counterexample: {path}", file=sys.stderr)
        if not args.json:
            ex = result.explored
            verdict = "pass" if result.passed else "FAIL"
            print(f"{kind:10s} [{verdict}]  {ex.states} states, "
                  f"{ex.transitions} transitions, "
                  f"{ex.elapsed:.2f}s"
                  + ("" if ex.complete else "  (TRUNCATED)"))
            for prop in result.properties:
                print(f"  {prop.name:20s} {prop.status:7s} {prop.detail}")

    if args.json:
        print(json.dumps([r.to_dict() for r in results], indent=2))
    elif failed:
        bad = [r.kind for r in results if not r.passed]
        print(f"repro.analysis model: FAILED for {', '.join(bad)}",
              file=sys.stderr)
    else:
        print(f"repro.analysis model: {len(results)} kind(s) verified "
              f"at bound {bound.describe()}", file=sys.stderr)
    return 1 if failed else 0


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "model":
        return model_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Protocol lint for the simulated RDMA stack "
                    "(static VS1xx rules; the runtime rules run under "
                    "repro-bench --sanitize; 'model' subcommand runs "
                    "the protocol model checker).",
    )
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint "
                             "(default: the installed repro package)")
    parser.add_argument("--select", metavar="RULES",
                        help="comma-separated rule ids to run "
                             "(e.g. VS101,VS104)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="violation output format (default: text)")
    args = parser.parse_args(argv)

    if args.list_rules:
        print("static rules (python -m repro.analysis):")
        for rule_id, description in STATIC_RULES.items():
            print(f"  {rule_id}  {description}")
        print("runtime rules (repro-bench --sanitize):")
        for rule_id, description in RUNTIME_RULES.items():
            print(f"  {rule_id}  {description}")
        return 0

    try:
        select = parse_select(args.select)
    except ValueError as exc:
        parser.error(str(exc))
    paths = [Path(p) for p in args.paths] if args.paths else [package_root()]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        parser.error(f"no such path: {', '.join(missing)}")
    violations: List[LintViolation] = lint_paths(paths, select=select)

    if args.format == "json":
        print(json.dumps([{
            "rule": v.rule, "path": v.path, "line": v.line,
            "message": v.message,
        } for v in violations], indent=2))
    else:
        for violation in violations:
            print(violation)
        print(f"repro.analysis: {len(violations)} violation(s) in "
              f"{len(paths)} path(s)", file=sys.stderr)
    return 1 if violations else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
