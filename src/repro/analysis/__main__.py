"""CLI driver: ``python -m repro.analysis [paths...]``.

Lints ``src/repro`` (or the given files/directories) with the VS1xx
protocol rules and exits non-zero if anything is found.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.linter import (
    STATIC_RULES,
    LintViolation,
    lint_paths,
    package_root,
)
from repro.analysis.sanitizer import RUNTIME_RULES

__all__ = ["main"]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Protocol lint for the simulated RDMA stack "
                    "(static VS1xx rules; the runtime rules run under "
                    "repro-bench --sanitize).",
    )
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint "
                             "(default: the installed repro package)")
    parser.add_argument("--select", metavar="RULES",
                        help="comma-separated rule ids to run "
                             "(e.g. VS101,VS104)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="violation output format (default: text)")
    args = parser.parse_args(argv)

    if args.list_rules:
        print("static rules (python -m repro.analysis):")
        for rule_id, description in STATIC_RULES.items():
            print(f"  {rule_id}  {description}")
        print("runtime rules (repro-bench --sanitize):")
        for rule_id, description in RUNTIME_RULES.items():
            print(f"  {rule_id}  {description}")
        return 0

    select = args.select.split(",") if args.select else None
    paths = [Path(p) for p in args.paths] if args.paths else [package_root()]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        parser.error(f"no such path: {', '.join(missing)}")
    violations: List[LintViolation] = lint_paths(paths, select=select)

    if args.format == "json":
        print(json.dumps([{
            "rule": v.rule, "path": v.path, "line": v.line,
            "message": v.message,
        } for v in violations], indent=2))
    else:
        for violation in violations:
            print(violation)
        print(f"repro.analysis: {len(violations)} violation(s) in "
              f"{len(paths)} path(s)", file=sys.stderr)
    return 1 if violations else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
