"""Pytest collection hooks: ``pytest --repro-lint`` / ``--repro-model``.

``--repro-lint`` adds one synthetic test item running the VS1xx static
lint over the installed ``repro`` package; ``--repro-lint-select``
narrows it to specific rules with the same validated semantics as the
CLI's ``--select`` (both route through
:func:`repro.analysis.linter.parse_select`, so a typo'd rule id fails
the run instead of silently linting nothing).

``--repro-model`` adds one item per modeled endpoint kind, each running
the bounded protocol model checker at the default bound — so protocol
verification gates the same command CI and developers already run.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import pytest

from repro.analysis.linter import (
    LintViolation,
    lint_paths,
    package_root,
    parse_select,
)

__all__ = ["ReproLintItem", "ReproModelItem"]


def pytest_addoption(parser) -> None:
    parser.addoption(
        "--repro-lint", action="store_true", default=False,
        help="also run the repro.analysis static protocol lint "
             "as a test item")
    parser.addoption(
        "--repro-lint-select", metavar="RULES", default=None,
        help="restrict --repro-lint to these comma-separated rule ids "
             "(same semantics as python -m repro.analysis --select)")
    parser.addoption(
        "--repro-model", action="store_true", default=False,
        help="also run the protocol model checker (one test item per "
             "modeled endpoint kind, default bound)")


class ReproLintFailure(Exception):
    """Static protocol lint violations were found."""


class ReproLintItem(pytest.Item):
    """One collected item running the whole static lint pass."""

    select: Optional[Tuple[str, ...]] = None

    def runtest(self) -> None:
        violations: List[LintViolation] = lint_paths(
            [package_root()], select=self.select)
        if violations:
            listing = "\n".join(str(v) for v in violations)
            raise ReproLintFailure(
                f"{len(violations)} protocol lint violation(s):\n{listing}")

    def repr_failure(self, excinfo):
        if isinstance(excinfo.value, ReproLintFailure):
            return str(excinfo.value)
        return super().repr_failure(excinfo)

    def reportinfo(self):
        return self.path, None, "repro-analysis-lint"


class ReproModelFailure(Exception):
    """The protocol model checker found a violated property."""


class ReproModelItem(pytest.Item):
    """One collected item model-checking one endpoint kind."""

    kind: str = "?"

    def runtest(self) -> None:
        from repro.analysis.model import check_kind
        result = check_kind(self.kind)
        if not result.passed:
            lines = [f"protocol model check failed for {self.kind} at "
                     f"bound {result.bound.describe()}:"]
            for prop in result.properties:
                if not prop.ok:
                    lines.append(f"  {prop.name}: {prop.status} — "
                                 f"{prop.detail}")
                    if prop.witness is not None:
                        steps = " -> ".join(
                            a.name for a, _s in prop.witness.steps[1:])
                        lines.append(f"    counterexample "
                                     f"({len(prop.witness)} steps): {steps}")
            raise ReproModelFailure("\n".join(lines))

    def repr_failure(self, excinfo):
        if isinstance(excinfo.value, ReproModelFailure):
            return str(excinfo.value)
        return super().repr_failure(excinfo)

    def reportinfo(self):
        return self.path, None, f"repro-analysis-model[{self.kind}]"


@pytest.hookimpl(trylast=True)
def pytest_collection_modifyitems(session, config, items) -> None:
    if config.getoption("--repro-lint"):
        try:
            select = parse_select(config.getoption("--repro-lint-select"))
        except ValueError as exc:
            raise pytest.UsageError(f"--repro-lint-select: {exc}") from None
        item = ReproLintItem.from_parent(
            session, name="repro-analysis-lint")
        item.select = select
        items.append(item)
    if config.getoption("--repro-model"):
        from repro.analysis.model import modeled_kinds
        for kind in modeled_kinds():
            item = ReproModelItem.from_parent(
                session, name=f"repro-analysis-model[{kind}]")
            item.kind = kind
            items.append(item)
