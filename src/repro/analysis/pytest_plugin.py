"""Pytest collection hook: ``pytest --repro-lint``.

Adds one synthetic test item that runs the VS1xx static lint over the
installed ``repro`` package and fails with the full violation listing —
so the protocol lint gates the same command CI and developers already
run, without a separate tool invocation.
"""

from __future__ import annotations

from typing import List

import pytest

from repro.analysis.linter import LintViolation, lint_paths, package_root

__all__ = ["ReproLintItem"]


def pytest_addoption(parser) -> None:
    parser.addoption(
        "--repro-lint", action="store_true", default=False,
        help="also run the repro.analysis static protocol lint "
             "as a test item")


class ReproLintFailure(Exception):
    """Static protocol lint violations were found."""


class ReproLintItem(pytest.Item):
    """One collected item running the whole static lint pass."""

    def runtest(self) -> None:
        violations: List[LintViolation] = lint_paths([package_root()])
        if violations:
            listing = "\n".join(str(v) for v in violations)
            raise ReproLintFailure(
                f"{len(violations)} protocol lint violation(s):\n{listing}")

    def repr_failure(self, excinfo):
        if isinstance(excinfo.value, ReproLintFailure):
            return str(excinfo.value)
        return super().repr_failure(excinfo)

    def reportinfo(self):
        return self.path, None, "repro-analysis-lint"


@pytest.hookimpl(trylast=True)
def pytest_collection_modifyitems(session, config, items) -> None:
    if config.getoption("--repro-lint"):
        items.append(ReproLintItem.from_parent(
            session, name="repro-analysis-lint"))
