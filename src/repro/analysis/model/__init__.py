"""Bounded explicit-state model checking of the shuffle protocols.

The transport layer's flow-control machinery — credit words, credit
datagrams, FreeArr/ValidArr circular queues — is small enough to verify
exhaustively at bounded instance sizes.  This package extracts each
endpoint kind's protocol as a finite transition system (from the same
policy objects the simulator runs, via their ``model()`` hooks) and
explores every interleaving of sender, receivers and fabric faults,
checking deadlock-freedom, credit conservation, ring consistency and
eventual delivery.  Violations come back as minimal counterexample
traces, exported in the telemetry layer's Chrome-trace format.

Entry points: ``python -m repro.analysis model`` (CLI), ``pytest
--repro-model`` (test items), :func:`check_kind` / :func:`check_all`
(library).
"""

from repro.analysis.model.checker import (
    PROPERTIES,
    CheckResult,
    PropertyStatus,
    Witness,
    check_all,
    check_kind,
    check_model,
)
from repro.analysis.model.core import (
    Action,
    ModelBound,
    ProtocolModel,
    parse_bound,
)
from repro.analysis.model.explorer import ExploreResult, explore
from repro.analysis.model.protocols import (
    CreditProtocolModel,
    NoProtocolModelError,
    RingProtocolModel,
    extract_model,
    modeled_kinds,
)
from repro.analysis.model.trace import (
    render_counterexample,
    write_counterexample,
)

__all__ = [
    "Action",
    "CheckResult",
    "CreditProtocolModel",
    "ExploreResult",
    "ModelBound",
    "NoProtocolModelError",
    "PROPERTIES",
    "PropertyStatus",
    "ProtocolModel",
    "RingProtocolModel",
    "Witness",
    "check_all",
    "check_kind",
    "check_model",
    "explore",
    "extract_model",
    "modeled_kinds",
    "parse_bound",
    "render_counterexample",
    "write_counterexample",
]
