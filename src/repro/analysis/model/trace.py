"""Render model-checker counterexamples as Chrome trace JSON.

A :class:`~repro.analysis.model.checker.Witness` is a shortest action
path; this module replays it through the *telemetry* layer's
:class:`~repro.telemetry.trace.Tracer` — the same exporter the
simulator uses — so a counterexample loads in ``chrome://tracing`` or
https://ui.perfetto.dev exactly like a simulation trace does.

Layout: pseudo-process 0 is the sender, 1..peers are the per-stream
receivers, and one extra process carries fabric events (losses, QP
errors).  Each protocol step is an ``X`` span at a synthetic 1 µs per
step (model time is untimed — only the order matters), annotated with
the full post-state; the final instant marks the violated property.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Optional

from repro.telemetry.trace import TraceBudget, Tracer

from repro.analysis.model.checker import Witness
from repro.analysis.model.core import ProtocolModel

__all__ = ["render_counterexample", "write_counterexample"]

#: synthetic duration of one protocol step, in simulated nanoseconds.
STEP_NS = 1000


class _Clock:
    """Minimal stand-in for the Simulator: the Tracer only reads
    ``now`` when an event omits its timestamp, which we never do."""

    __slots__ = ("now",)

    def __init__(self) -> None:
        self.now = 0


def render_counterexample(model: ProtocolModel,
                          witness: Witness) -> Dict[str, Any]:
    """Build the Chrome trace dict for one counterexample."""
    peers = model.bound.peers
    fabric_pid = peers + 1
    tracer = Tracer(_Clock(), TraceBudget(),
                    label=f"model/{model.name}")
    tracer.name_process(0, "sender")
    for i in range(peers):
        tracer.name_process(1 + i, f"receiver{i}")
    tracer.name_process(fabric_pid, "fabric")

    first_action, initial = witness.steps[0]
    assert first_action is None
    tracer.instant(0, "protocol", "initial", ts_ns=0, cat="model",
                   args={"state": model.describe_state(initial),
                         "bound": model.bound.describe()})

    for step, (action, state) in enumerate(witness.steps[1:], start=1):
        assert action is not None
        if action.site == "fabric":
            pid = fabric_pid
        elif action.site == "receiver" and action.peer is not None:
            pid = 1 + action.peer
        else:
            pid = 0
        track = ("group" if action.peer is None
                 else f"peer{action.peer}")
        tracer.complete(
            pid, track, action.name,
            start_ns=step * STEP_NS, dur_ns=STEP_NS * 3 // 4,
            cat="fault" if action.fault else "model",
            args={"step": step, "peer": action.peer,
                  "state": model.describe_state(state)})

    end_ns = len(witness.steps) * STEP_NS
    tracer.instant(0, "protocol", f"VIOLATION: {witness.property}",
                   ts_ns=end_ns, cat="violation",
                   args={"message": witness.message,
                         "steps": len(witness)})
    trace = tracer.to_dict()
    trace["otherData"].update({
        "model": model.name,
        "property": witness.property,
        "message": witness.message,
        "counterexample_steps": len(witness),
    })
    return trace


def write_counterexample(model: ProtocolModel, witness: Witness,
                         directory: str,
                         filename: Optional[str] = None) -> str:
    """Write one counterexample trace under ``directory``; returns the
    file path."""
    os.makedirs(directory, exist_ok=True)
    prop = witness.property.replace("/", "-")
    name = filename or f"{model.name}.{prop}.trace.json"
    path = os.path.join(directory, name)
    with open(path, "w") as fh:
        json.dump(render_counterexample(model, witness), fh, indent=None)
    return path
