"""Property evaluation over an explored protocol graph.

Four properties per endpoint kind (ISSUE/DESIGN "Protocol model
checking"):

* **deadlock-freedom** — no reachable non-terminal state without an
  enabled transition.
* **credit-conservation** — the flow-control ledger balances in every
  reachable state: ``sent <= credit <= posted``, in-flight grants are
  backed by posted Receives, in-flight messages fit the receiver's
  availability, and no buffer leaks from the sender pool or the
  receiver window.
* **ring-consistency** — never more in-flight FreeArr/ValidArr values
  than the ring has slots (one-sided designs; not applicable to the
  credited family).
* **eventual-delivery** — every reachable state can still reach a
  terminal outcome ("done", or "degraded" when a failure was cleanly
  detected); a state that cannot is a silent wedge.

The partial-order reduction is an accelerator for the passing case:
whenever a reduced exploration flags anything, the checker re-explores
the full graph, so every failing verdict and every counterexample below
is drawn from the unreduced state space (and is minimal — BFS parent
pointers give shortest paths).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.model.core import Action, ModelBound, ProtocolModel
from repro.analysis.model.explorer import ExploreResult, explore
from repro.analysis.model.protocols import extract_model

__all__ = [
    "CheckResult",
    "PROPERTIES",
    "PropertyStatus",
    "Witness",
    "check_all",
    "check_kind",
    "check_model",
]

PROPERTIES = ("deadlock-freedom", "credit-conservation",
              "ring-consistency", "eventual-delivery")


@dataclass
class Witness:
    """A minimal counterexample: the shortest action path from the
    initial state to a state exhibiting the violation."""

    property: str
    message: str
    state_id: int
    #: [(None, initial), (action, state), ...] ending at the violation.
    steps: List[Tuple[Optional[Action], Any]] = field(repr=False)

    def __len__(self) -> int:
        return len(self.steps) - 1  # actions, not states


@dataclass
class PropertyStatus:
    name: str
    #: "pass" | "fail" | "n/a" | "unknown" (search truncated).
    status: str
    detail: str
    witness: Optional[Witness] = None

    @property
    def ok(self) -> bool:
        return self.status in ("pass", "n/a")


@dataclass
class CheckResult:
    """Verdict for one endpoint kind at one bound."""

    kind: str
    model: ProtocolModel
    explored: ExploreResult
    properties: List[PropertyStatus]

    @property
    def bound(self) -> ModelBound:
        return self.model.bound

    @property
    def passed(self) -> bool:
        return all(p.ok for p in self.properties)

    @property
    def witnesses(self) -> List[Witness]:
        return [p.witness for p in self.properties if p.witness is not None]

    def status_of(self, name: str) -> PropertyStatus:
        for p in self.properties:
            if p.name == name:
                return p
        raise KeyError(name)

    def to_dict(self) -> Dict[str, Any]:
        ex = self.explored
        return {
            "kind": self.kind,
            "family": self.model.family,
            "bound": self.bound.describe(),
            "states": ex.states,
            "transitions": ex.transitions,
            "complete": ex.complete,
            "reduced": ex.por,
            "terminals": dict(ex.terminals),
            "elapsed_s": round(ex.elapsed, 3),
            "passed": self.passed,
            "properties": [
                {"name": p.name, "status": p.status, "detail": p.detail,
                 **({"counterexample_steps": len(p.witness)}
                    if p.witness else {})}
                for p in self.properties
            ],
        }


def _witness(res: ExploreResult, prop: str, state_id: int,
             message: str) -> Witness:
    return Witness(property=prop, message=message, state_id=state_id,
                   steps=res.path_to(state_id))


def check_model(model: ProtocolModel, por: bool = True) -> CheckResult:
    """Explore ``model`` and evaluate the four properties."""
    res = explore(model, por=por)
    flagged = bool(res.deadlocks or res.violations
                   or res.no_terminal_path)
    if por and flagged:
        # Confirm on the full graph; counterexamples must be minimal
        # paths of the unreduced state space.
        res = explore(model, por=False)

    props: List[PropertyStatus] = []
    size = (f"{res.states} states, {res.transitions} transitions"
            + ("" if res.complete else " (truncated)")
            + (", reduced" if res.por else ""))

    # deadlock-freedom
    if res.deadlocks:
        sid = res.deadlocks[0]
        msg = ("non-terminal state with no enabled transition "
               f"({len(res.deadlocks)} such state"
               f"{'s' if len(res.deadlocks) > 1 else ''})")
        props.append(PropertyStatus(
            "deadlock-freedom", "fail", f"{msg}; {size}",
            _witness(res, "deadlock-freedom", sid, msg)))
    elif not res.complete:
        props.append(PropertyStatus(
            "deadlock-freedom", "unknown",
            f"no deadlock within the explored prefix; {size}"))
    else:
        props.append(PropertyStatus(
            "deadlock-freedom", "pass", size))

    # credit-conservation / ring-consistency (state invariants)
    for name in ("credit-conservation", "ring-consistency"):
        if name == "ring-consistency" and model.family != "ring":
            props.append(PropertyStatus(
                name, "n/a", "no circular message queues in this design"))
            continue
        hit = res.violations.get(name)
        if hit is not None:
            sid, msg = hit
            props.append(PropertyStatus(
                name, "fail", f"{msg}; {size}",
                _witness(res, name, sid, msg)))
        elif not res.complete:
            props.append(PropertyStatus(
                name, "unknown",
                f"holds on the explored prefix; {size}"))
        else:
            props.append(PropertyStatus(
                name, "pass", f"holds in every reachable state; {size}"))

    # eventual-delivery
    offenders = res.no_terminal_path
    if offenders:
        sid = offenders[0]
        msg = (f"{len(offenders)} reachable state"
               f"{'s' if len(offenders) > 1 else ''} cannot reach any "
               f"terminal outcome (silent wedge)")
        props.append(PropertyStatus(
            "eventual-delivery", "fail", f"{msg}; {size}",
            _witness(res, "eventual-delivery", sid, msg)))
    elif offenders is None:
        props.append(PropertyStatus(
            "eventual-delivery", "unknown",
            f"search truncated before the claim could be evaluated; "
            f"{size}"))
    else:
        outcome = ", ".join(f"{v} {k}" for k, v in
                            sorted(res.terminals.items())) or "none"
        props.append(PropertyStatus(
            "eventual-delivery", "pass",
            f"every explored state reaches a terminal "
            f"(outcomes: {outcome}); {size}"))

    return CheckResult(kind=model.name, model=model, explored=res,
                       properties=props)


def check_kind(kind: str, bound: Optional[ModelBound] = None,
               por: bool = True) -> CheckResult:
    """Extract and check the protocol model of a registered kind."""
    return check_model(extract_model(kind, bound), por=por)


def check_all(bound: Optional[ModelBound] = None, por: bool = True,
              kinds: Optional[List[str]] = None) -> List[CheckResult]:
    """Check every endpoint kind that exposes a protocol model."""
    from repro.analysis.model.protocols import modeled_kinds
    names = list(kinds) if kinds is not None else list(modeled_kinds())
    return [check_kind(k, bound, por=por) for k in names]
