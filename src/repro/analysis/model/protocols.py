"""The paper's flow-control protocols as finite transition systems.

Two families cover all five designs:

* :class:`CreditProtocolModel` — the credited two-sided path (§4.4.1-2):
  SR_RC (credit words over RC), SR_UD (credit datagrams over UD, message
  counting, keepalive), SR_UD_MC (one group send paying credit on every
  member).
* :class:`RingProtocolModel` — the one-sided FreeArr/ValidArr path
  (§4.4.3): RD_RC (receiver pulls with RDMA Read), WR_RC (sender pushes
  with RDMA Write).

Models are assembled from the transport layer's own introspection hooks
(:meth:`CreditWordBoard.model`, :meth:`CreditDatagramPort.model`,
:meth:`RingBoard.model`, :func:`repro.verbs.qp.fault_actions`), and the
credit-arrival transition applies values through the *production*
:func:`~repro.core.transport.credit.grant_credit` on a real
:class:`~repro.core.transport.connections.PeerConnection` — the
max-merge semantics is executed, not re-implemented.

State layout (all plain nested tuples, hashable):

``state = (shared, peer_0, peer_1, ...)`` — one tuple per peer-stream
(sender's view and that peer's receiver view zipped together; each
stream has its own receiver node).  Abstractions: buffer identity is
dropped (counts only), receiver availability is tracked per stream (the
conservative decomposition of the shared UD receive queue), and
simulated time is dropped entirely — a timeout is just another enabled
transition, so the checker explores both "straggler arrived first" and
"timer fired first".
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.transport.connections import PeerConnection
from repro.core.transport.credit import grant_credit
from repro.core.transport.modeling import CreditModel, RingModel
from repro.core.transport.registry import backend, registered_kinds
from repro.core.transport.rings import RingCursor

from repro.analysis.model.core import Action, ModelBound, ProtocolModel

__all__ = [
    "CreditProtocolModel",
    "NoProtocolModelError",
    "RingProtocolModel",
    "extract_model",
    "modeled_kinds",
]


class _ModelNotify:
    """Stands in for the sim Notify on the model's PeerConnection."""

    __slots__ = ()

    def notify_all(self) -> None:
        return None


_NOTIFY = _ModelNotify()


def _merge_credit(credit: int, value: int) -> int:
    """Apply an absolute credit through the production max-merge."""
    conn = PeerConnection(0)
    conn.credit = credit
    conn.notify = _NOTIFY
    grant_credit(conn, value)
    return conn.credit


def _check_ring(ring: RingModel) -> RingModel:
    """Sanity-check the occupancy invariant against the production
    cursor arithmetic: a :class:`RingCursor` over ``cap`` slots visits
    ``cap`` distinct slots before wrapping, so at most ``cap`` produced-
    but-unconsumed values can coexist without overwriting a live slot."""
    cursor = RingCursor(0, ring.cap)
    distinct = {cursor.next_slot() for _ in range(ring.cap)}
    if len(distinct) != ring.cap:
        raise ValueError(
            f"ring {ring.name!r}: cursor arithmetic visits "
            f"{len(distinct)} distinct slots for cap {ring.cap}")
    return ring


# -- credit family ----------------------------------------------------------

# peer-stream tuple indices
CP_TO_SEND, CP_SENT, CP_CREDIT, CP_DATA_FLY, CP_FINAL, CP_CQE, \
    CP_POSTED, CP_CONSUMED, CP_HELD, CP_CFLY, CP_ARRIVED, CP_FLAGS = range(12)
# shared tuple indices
CS_FREE, CS_MC_TOSEND, CS_MC_CQE, CS_DLOSS, CS_CLOSS, CS_FLOSS, \
    CS_QPERR = range(7)
# final-marker lifecycle
F_UNSENT, F_FLY, F_SEEN, F_LOST = range(4)
# peer flags
DETECTED, WEDGED = 1, 2

_CP_KEYS = ("to_send", "sent", "credit", "data_fly", "final", "cqe",
            "posted", "consumed", "held", "credit_fly", "arrived", "flags")


class CreditProtocolModel(ProtocolModel):
    """Transition system of the credited two-sided data path (§4.4.1-2).

    Per stream the sender holds ``to_send`` data messages, consumes one
    credit per message (data *and* final), and draws data buffers from
    the shared pool; the receiver consumes availability, releases held
    buffers back (reposting a Receive), and advertises the absolute
    ``posted`` every ``credit_frequency`` releases.  Lossy transports
    add message/credit/final loss and the §4.4.2 machinery: completions
    at send time, message counting against the final's total, the drain
    timeout declaring a *detected* failure, and the keepalive
    re-advertising absolute credit.
    """

    family = "credit"

    def __init__(self, name: str, bound: ModelBound, credit: CreditModel,
                 faults: Tuple[str, ...], multicast: bool = False):
        self.name = name
        self.bound = bound
        self.credit = credit
        self.faults = tuple(faults)
        self.multicast = multicast
        self.lossy = credit.lossy
        self.ordered = credit.ordered
        self.keepalive = credit.keepalive
        if self.lossy != ("message_loss" in self.faults):
            raise ValueError(
                f"{name}: credit scheme {credit.scheme!r} disagrees with "
                f"the transport fault model {self.faults!r} about loss")
        #: UD completes the signaled send locally (no ack); RC completes
        #: only after the hardware ack, i.e. after delivery.
        self.cqe_on_send = self.lossy
        #: UD multiplexes every peer over one shared QP, so a QP error
        #: takes down all streams at once.
        self.shared_qp = self.lossy

    # -- bug hooks (overridden by the planted-corpus models) ---------------

    def _release_credit_values(self, posted: int) -> Tuple[int, ...]:
        """Credit values advertised by a release that took ``posted`` to
        its new value (§5.1.1 write-back amortization)."""
        if posted % self.bound.credit_frequency == 0:
            return (posted,)
        return ()

    def _final_credit_values(self, posted: int) -> Tuple[int, ...]:
        """Credit values advertised when the final marker is consumed
        (a correct receiver advertises none — the stream is over)."""
        return ()

    # -- state helpers ------------------------------------------------------

    def initial(self) -> Any:
        b = self.bound
        per_peer_messages = 0 if self.multicast else b.messages
        peer = (per_peer_messages, 0, b.window, 0, F_UNSENT, 0,
                b.window, 0, 0, (), 0, 0)
        lossy = self.lossy
        shared = (b.sender_buffers,
                  b.messages if self.multicast else 0, 0,
                  b.data_loss if lossy else 0,
                  b.credit_loss if lossy else 0,
                  b.final_loss if lossy else 0,
                  b.qp_errors if "qp_error" in self.faults else 0)
        return (shared,) + (peer,) * b.peers

    @staticmethod
    def _avail(p: Tuple) -> int:
        """Receives available: posted (credit accounting) plus the
        silent repost of the final's Receive, minus consumed."""
        extra = 1 if p[CP_FINAL] == F_SEEN else 0
        return p[CP_POSTED] + extra - p[CP_CONSUMED]

    def _data_done(self, sh: Tuple, p: Tuple) -> bool:
        if self.multicast:
            return sh[CS_MC_TOSEND] == 0
        return p[CP_TO_SEND] == 0

    def _resolved(self, sh: Tuple, p: Tuple) -> bool:
        """The stream reached an outcome: clean completion, or failure
        cleanly detected by message counting."""
        if p[CP_FLAGS] & DETECTED:
            return True
        if p[CP_FLAGS] & WEDGED:
            return False
        return (self._data_done(sh, p) and p[CP_FINAL] == F_SEEN
                and p[CP_ARRIVED] == self.bound.messages
                and p[CP_DATA_FLY] == 0)

    def _cfly_add(self, cfly: Tuple[int, ...], value: int) -> Tuple[int, ...]:
        if self.ordered:
            return cfly + (value,)
        return tuple(sorted(cfly + (value,)))

    def _cfly_arrivals(self, cfly: Tuple[int, ...]) -> List[
            Tuple[int, Tuple[int, ...]]]:
        """(value, remaining) choices for the next credit arrival."""
        if not cfly:
            return []
        if self.ordered:
            return [(cfly[0], cfly[1:])]
        out = []
        for v in dict.fromkeys(cfly):  # distinct, insertion order
            rest = list(cfly)
            rest.remove(v)
            out.append((v, tuple(rest)))
        return out

    def por_shared_gated(self, state: Any, peer: int) -> bool:
        # Group sends read every peer's credit *and* the shared pool, so
        # any local action can flip their guard — no reduction at all.
        if self.multicast:
            return True
        p = state[1 + peer]
        # send_data is the one shared-gated guard: blocked on the pool
        # alone (to_send > 0, credit available), another peer's poll_cqe
        # would enable it.  Every other guard reads only this stream
        # (loss budgets only ever shrink, so a disabled fault with
        # nothing in flight stays disabled until this peer acts).
        return p[CP_TO_SEND] > 0 and p[CP_SENT] < p[CP_CREDIT]

    # -- transitions --------------------------------------------------------

    def successors(self, state: Any) -> List[Tuple[Action, Any]]:
        sh = state[0]
        peers = state[1:]
        out: List[Tuple[Action, Any]] = []

        def emit(name: str, peer: Optional[int], site: str, local: bool,
                 fault: bool, nsh: Tuple, npeers: Tuple) -> None:
            out.append((Action(name, peer, site, local, fault),
                        (nsh,) + npeers))

        def with_peer(i: int, q: List) -> Tuple:
            return peers[:i] + (tuple(q),) + peers[i + 1:]

        if self.multicast:
            self._group_successors(sh, peers, emit)

        for i, p in enumerate(peers):
            flags = p[CP_FLAGS]
            if flags & WEDGED:
                # Only flushed completions still drain (buffer hygiene).
                if p[CP_CQE] > 0:
                    q = list(p)
                    q[CP_CQE] -= 1
                    nsh = list(sh)
                    nsh[CS_FREE] += 1
                    emit("poll_cqe", i, "sender", False, False,
                         tuple(nsh), with_peer(i, q))
                continue

            # sender: post one data message (consumes credit + a buffer)
            if (not self.multicast and p[CP_TO_SEND] > 0
                    and p[CP_SENT] < p[CP_CREDIT] and sh[CS_FREE] > 0):
                q = list(p)
                q[CP_TO_SEND] -= 1
                q[CP_SENT] += 1
                q[CP_DATA_FLY] += 1
                if self.cqe_on_send:
                    q[CP_CQE] += 1
                nsh = list(sh)
                nsh[CS_FREE] -= 1
                emit("send_data", i, "sender", False, False,
                     tuple(nsh), with_peer(i, q))

            # sender: post the final marker (consumes credit, no buffer)
            if (self._data_done(sh, p) and p[CP_FINAL] == F_UNSENT
                    and p[CP_SENT] < p[CP_CREDIT]):
                q = list(p)
                q[CP_SENT] += 1
                q[CP_FINAL] = F_FLY
                emit("send_final", i, "sender", True, False,
                     sh, with_peer(i, q))

            # receiver: one data message lands in a posted Receive
            if p[CP_DATA_FLY] > 0 and self._avail(p) > 0:
                q = list(p)
                q[CP_DATA_FLY] -= 1
                q[CP_CONSUMED] += 1
                q[CP_ARRIVED] += 1
                q[CP_HELD] += 1
                if not self.cqe_on_send:  # RC: ack completes the send
                    q[CP_CQE] += 1
                emit("deliver_data", i, "receiver", True, False,
                     sh, with_peer(i, q))

            # UD only: a datagram with no Receive is silently dropped
            # (unreachable for correct protocols — credit prevents it)
            if self.lossy and p[CP_DATA_FLY] > 0 and self._avail(p) == 0:
                q = list(p)
                q[CP_DATA_FLY] -= 1
                emit("drop_no_recv", i, "receiver", True, False,
                     sh, with_peer(i, q))

            # receiver: the final marker lands (RC: ordered after data)
            if p[CP_FINAL] == F_FLY and self._avail(p) > 0 and (
                    self.lossy or p[CP_DATA_FLY] == 0):
                q = list(p)
                q[CP_FINAL] = F_SEEN
                q[CP_CONSUMED] += 1
                for v in self._final_credit_values(q[CP_POSTED]):
                    q[CP_CFLY] = self._cfly_add(q[CP_CFLY], v)
                emit("deliver_final", i, "receiver", True, False,
                     sh, with_peer(i, q))
            if (self.lossy and p[CP_FINAL] == F_FLY
                    and self._avail(p) == 0):
                q = list(p)
                q[CP_FINAL] = F_LOST
                emit("drop_final_no_recv", i, "receiver", True, False,
                     sh, with_peer(i, q))

            # receiver: application releases a held buffer -> repost the
            # Receive, advertise credit every credit_frequency releases
            if p[CP_HELD] > 0:
                q = list(p)
                q[CP_HELD] -= 1
                q[CP_POSTED] += 1
                for v in self._release_credit_values(q[CP_POSTED]):
                    q[CP_CFLY] = self._cfly_add(q[CP_CFLY], v)
                emit("release", i, "receiver", True, False,
                     sh, with_peer(i, q))

            # sender: an in-flight credit value arrives (max-merge)
            for value, rest in self._cfly_arrivals(p[CP_CFLY]):
                q = list(p)
                q[CP_CFLY] = rest
                q[CP_CREDIT] = _merge_credit(q[CP_CREDIT], value)
                emit("credit_arrive", i, "sender", True, False,
                     sh, with_peer(i, q))

            # sender: poll one signaled completion -> buffer reusable
            if not self.multicast and p[CP_CQE] > 0:
                q = list(p)
                q[CP_CQE] -= 1
                nsh = list(sh)
                nsh[CS_FREE] += 1
                emit("poll_cqe", i, "sender", False, False,
                     tuple(nsh), with_peer(i, q))

            if self.lossy:
                # receiver: keepalive re-advertises the absolute credit
                # while the source is still active (idempotent, so a
                # value already in flight is not duplicated)
                active = not (p[CP_FINAL] == F_SEEN
                              and p[CP_ARRIVED] >= self.bound.messages)
                if (self.keepalive and active
                        and p[CP_POSTED] not in p[CP_CFLY]):
                    q = list(p)
                    q[CP_CFLY] = self._cfly_add(q[CP_CFLY], q[CP_POSTED])
                    emit("keepalive", i, "receiver", True, False,
                         sh, with_peer(i, q))

                # receiver: drain timeout fires -> detected failure
                # (message counting: total known, stragglers impossible)
                if (p[CP_FINAL] == F_SEEN
                        and p[CP_ARRIVED] < self.bound.messages
                        and p[CP_DATA_FLY] == 0):
                    q = list(p)
                    q[CP_FLAGS] = flags | DETECTED
                    emit("drain_timeout", i, "receiver", True, False,
                         sh, with_peer(i, q))

        self._fault_successors(sh, peers, emit)
        return out

    def _group_successors(self, sh: Tuple, peers: Tuple, emit) -> None:
        """Multicast: one Send serves every member, paying one credit
        and one availability slot per member (flow control per member)."""
        if (sh[CS_MC_TOSEND] > 0 and sh[CS_FREE] > 0
                and all(p[CP_SENT] < p[CP_CREDIT] and not p[CP_FLAGS]
                        for p in peers)):
            npeers = []
            for p in peers:
                q = list(p)
                q[CP_SENT] += 1
                q[CP_DATA_FLY] += 1
                npeers.append(tuple(q))
            nsh = list(sh)
            nsh[CS_FREE] -= 1
            nsh[CS_MC_TOSEND] -= 1
            nsh[CS_MC_CQE] += 1
            emit("send_group", None, "sender", False, False,
                 tuple(nsh), tuple(npeers))
        if sh[CS_MC_CQE] > 0:
            nsh = list(sh)
            nsh[CS_MC_CQE] -= 1
            nsh[CS_FREE] += 1
            emit("poll_group_cqe", None, "sender", False, False,
                 tuple(nsh), peers)

    def _fault_successors(self, sh: Tuple, peers: Tuple, emit) -> None:
        for i, p in enumerate(peers):
            if p[CP_FLAGS]:
                continue
            if self.lossy and sh[CS_DLOSS] > 0 and p[CP_DATA_FLY] > 0:
                q = list(p)
                q[CP_DATA_FLY] -= 1
                nsh = list(sh)
                nsh[CS_DLOSS] -= 1
                emit("lose_data", i, "fabric", False, True,
                     tuple(nsh), peers[:i] + (tuple(q),) + peers[i + 1:])
            if self.lossy and sh[CS_CLOSS] > 0 and p[CP_CFLY]:
                for value, rest in self._cfly_arrivals(p[CP_CFLY]):
                    q = list(p)
                    q[CP_CFLY] = rest
                    nsh = list(sh)
                    nsh[CS_CLOSS] -= 1
                    emit("lose_credit", i, "fabric", False, True,
                         tuple(nsh), peers[:i] + (tuple(q),) + peers[i + 1:])
            if self.lossy and sh[CS_FLOSS] > 0 and p[CP_FINAL] == F_FLY:
                q = list(p)
                q[CP_FINAL] = F_LOST
                nsh = list(sh)
                nsh[CS_FLOSS] -= 1
                emit("lose_final", i, "fabric", False, True,
                     tuple(nsh), peers[:i] + (tuple(q),) + peers[i + 1:])
        if "qp_error" in self.faults and sh[CS_QPERR] > 0:
            if self.shared_qp:
                # one shared UD QP: every stream dies at once
                if any(not p[CP_FLAGS] for p in peers):
                    nsh = list(sh)
                    nsh[CS_QPERR] -= 1
                    npeers = tuple(self._wedge(p) for p in peers)
                    emit("qp_error", None, "fabric", False, True,
                         tuple(nsh), npeers)
            else:
                for i, p in enumerate(peers):
                    if p[CP_FLAGS]:
                        continue
                    nsh = list(sh)
                    nsh[CS_QPERR] -= 1
                    npeers = (peers[:i] + (self._wedge(p),)
                              + peers[i + 1:])
                    emit("qp_error", i, "fabric", False, True,
                         tuple(nsh), npeers)

    def _wedge(self, p: Tuple) -> Tuple:
        """QP enters ERROR: in-flight messages vanish, outstanding
        signaled WRs flush as error completions (RC) so their buffers
        still recycle, held buffers and credit state are abandoned."""
        q = list(p)
        q[CP_FLAGS] = p[CP_FLAGS] | WEDGED
        if not self.cqe_on_send:
            q[CP_CQE] += q[CP_DATA_FLY]  # flushed error CQEs
        q[CP_DATA_FLY] = 0
        if q[CP_FINAL] == F_FLY:
            q[CP_FINAL] = F_LOST
        q[CP_CFLY] = ()
        q[CP_HELD] = 0
        return tuple(q)

    # -- properties ---------------------------------------------------------

    def terminal(self, state: Any) -> Optional[str]:
        sh = state[0]
        peers = state[1:]
        if sh[CS_MC_TOSEND] or sh[CS_MC_CQE]:
            return None
        degraded = False
        for p in peers:
            if not self._resolved(sh, p):
                return None
            if p[CP_FLAGS]:
                degraded = True
                continue
            if p[CP_CQE] or p[CP_HELD] or p[CP_CFLY]:
                return None
        return "degraded" if degraded else "done"

    def check(self, state: Any) -> Tuple[Tuple[str, str], ...]:
        sh = state[0]
        peers = state[1:]
        found: List[Tuple[str, str]] = []
        in_use = sh[CS_MC_CQE]
        wedged = False
        for i, p in enumerate(peers):
            if p[CP_FLAGS] & WEDGED:
                wedged = True
                in_use += p[CP_CQE]
                continue
            in_use += p[CP_CQE]
            if not self.cqe_on_send:
                in_use += p[CP_DATA_FLY]
            if p[CP_SENT] > p[CP_CREDIT]:
                found.append((
                    "credit-conservation",
                    f"peer {i}: sent {p[CP_SENT]} messages against credit "
                    f"{p[CP_CREDIT]} (sent <= credit violated)"))
            if p[CP_CREDIT] > p[CP_POSTED]:
                found.append((
                    "credit-conservation",
                    f"peer {i}: sender holds credit {p[CP_CREDIT]} but the "
                    f"receiver only posted {p[CP_POSTED]} Receives"))
            for v in p[CP_CFLY]:
                if v > p[CP_POSTED]:
                    found.append((
                        "credit-conservation",
                        f"peer {i}: credit {v} in flight exceeds the "
                        f"{p[CP_POSTED]} Receives posted (overgrant)"))
                    break
            fly = p[CP_DATA_FLY] + (1 if p[CP_FINAL] == F_FLY else 0)
            if fly > self._avail(p):
                found.append((
                    "credit-conservation",
                    f"peer {i}: {fly} messages in flight for "
                    f"{self._avail(p)} available Receives (receiver "
                    f"overrun / RNR)"))
        if not wedged and sh[CS_FREE] + in_use != self.bound.sender_buffers:
            found.append((
                "credit-conservation",
                f"sender pool leak: {sh[CS_FREE]} free + {in_use} in use "
                f"!= {self.bound.sender_buffers} buffers"))
        return tuple(found)

    def describe_state(self, state: Any) -> Dict[str, Any]:
        sh = state[0]
        return {
            "shared": {"free_bufs": sh[CS_FREE],
                       "group_to_send": sh[CS_MC_TOSEND],
                       "group_cqe": sh[CS_MC_CQE],
                       "loss_budget": [sh[CS_DLOSS], sh[CS_CLOSS],
                                       sh[CS_FLOSS]],
                       "qp_error_budget": sh[CS_QPERR]},
            "peers": [dict(zip(_CP_KEYS, (list(v) if isinstance(v, tuple)
                                          else v for v in p)))
                      for p in state[1:]],
        }


# -- ring family ------------------------------------------------------------

# RD_RC peer-stream tuple indices
RD_TO_SEND, RD_VFLY_D, RD_VFLY_F, RD_PEND_D, RD_PEND_F, RD_RFLY_D, \
    RD_RFLY_F, RD_LFREE, RD_HELD, RD_FFLY_D, RD_FFLY_F, RD_FINAL_SENT, \
    RD_FINAL_SEEN, RD_FLAGS = range(14)
_RD_KEYS = ("to_send", "valid_fly", "valid_fly_final", "pending",
            "pending_final", "read_fly", "read_fly_final", "local_free",
            "held", "free_fly", "free_fly_final", "final_sent",
            "final_seen", "flags")

# WR_RC peer-stream tuple indices
WR_TO_SEND, WR_RFREE, WR_WCQE, WR_NVALID_D, WR_NVALID_F, WR_HELD, \
    WR_FFLY, WR_FINAL_SENT, WR_FINAL_SEEN, WR_FLAGS = range(10)
_WR_KEYS = ("to_send", "remote_free", "write_cqe", "valid_fly",
            "valid_fly_final", "held", "free_fly", "final_sent",
            "final_seen", "flags")

# shared tuple indices (ring family)
RS_FREE, RS_QPERR = range(2)


class RingProtocolModel(ProtocolModel):
    """Transition system of the FreeArr/ValidArr one-sided path (§4.4.3).

    ``role="read"`` models RD_RC: the sender produces full-buffer
    addresses into the receiver's ValidArr; the receiver joins them with
    free local buffers, issues RDMA Reads, and returns consumed
    addresses through the sender's FreeArr (Algorithm 3).  The final
    marker rides a reserved per-destination buffer outside the pool.

    ``role="write"`` models WR_RC: the sender pops a known-free remote
    buffer, Writes data then the ValidArr notification (RC ordering on
    one QP makes the data land first, which is why the notification
    arrival alone hands the buffer over), and the receiver returns
    addresses through FreeArr on release.
    """

    family = "ring"

    def __init__(self, name: str, bound: ModelBound, role: str,
                 valid: RingModel, free: RingModel,
                 faults: Tuple[str, ...]):
        if role not in ("read", "write"):
            raise ValueError(f"unknown ring role {role!r}")
        self.name = name
        self.bound = bound
        self.role = role
        self.valid = _check_ring(valid)
        self.free = _check_ring(free)
        self.faults = tuple(faults)

    # -- state helpers ------------------------------------------------------

    def initial(self) -> Any:
        b = self.bound
        shared = (b.sender_buffers,
                  b.qp_errors if "qp_error" in self.faults else 0)
        if self.role == "read":
            peer = (b.messages, 0, 0, 0, 0, 0, 0, b.window, 0, 0, 0, 0, 0, 0)
        else:
            peer = (b.messages, b.window, 0, 0, 0, 0, 0, 0, 0, 0)
        return (shared,) + (peer,) * b.peers

    def _done(self, p: Tuple) -> bool:
        if self.role == "read":
            return (p[RD_TO_SEND] == 0 and p[RD_FINAL_SENT]
                    and p[RD_FINAL_SEEN]
                    and p[RD_VFLY_D] == p[RD_VFLY_F] == 0
                    and p[RD_PEND_D] == p[RD_PEND_F] == 0
                    and p[RD_RFLY_D] == p[RD_RFLY_F] == 0
                    and p[RD_HELD] == 0
                    and p[RD_FFLY_D] == p[RD_FFLY_F] == 0
                    and p[RD_LFREE] == self.bound.window)
        return (p[WR_TO_SEND] == 0 and p[WR_FINAL_SENT]
                and p[WR_FINAL_SEEN] and p[WR_WCQE] == 0
                and p[WR_NVALID_D] == p[WR_NVALID_F] == 0
                and p[WR_HELD] == 0 and p[WR_FFLY] == 0
                and p[WR_RFREE] == self.bound.window)

    def por_shared_gated(self, state: Any, peer: int) -> bool:
        p = state[1 + peer]
        if self.role == "read":
            # produce_valid is blocked on the shared pool alone while
            # data remains; another peer's free_arrive would enable it.
            return p[RD_TO_SEND] > 0
        # write_data with a known-free remote buffer is blocked on the
        # shared pool alone; another peer's poll_write_cqe enables it.
        return p[WR_TO_SEND] > 0 and p[WR_RFREE] > 0

    # -- transitions --------------------------------------------------------

    def successors(self, state: Any) -> List[Tuple[Action, Any]]:
        sh = state[0]
        peers = state[1:]
        out: List[Tuple[Action, Any]] = []

        def emit(name: str, peer: int, site: str, local: bool, fault: bool,
                 nsh: Tuple, q: List) -> None:
            npeers = peers[:peer] + (tuple(q),) + peers[peer + 1:]
            out.append((Action(name, peer, site, local, fault),
                        (nsh,) + npeers))

        step = (self._read_successors if self.role == "read"
                else self._write_successors)
        for i, p in enumerate(peers):
            flags = p[-1]
            if flags & WEDGED:
                if self.role == "write" and p[WR_WCQE] > 0:
                    q = list(p)
                    q[WR_WCQE] -= 1
                    nsh = (sh[RS_FREE] + 1, sh[RS_QPERR])
                    emit("poll_write_cqe", i, "sender", False, False, nsh, q)
                continue
            step(sh, p, i, emit)
            if "qp_error" in self.faults and sh[RS_QPERR] > 0:
                emit("qp_error", i, "fabric", False, True,
                     (sh[RS_FREE], sh[RS_QPERR] - 1), self._wedge(p))
        return out

    def _read_successors(self, sh: Tuple, p: Tuple, i: int, emit) -> None:
        # sender: produce a full buffer's address into ValidArr
        if p[RD_TO_SEND] > 0 and sh[RS_FREE] > 0:
            q = list(p)
            q[RD_TO_SEND] -= 1
            q[RD_VFLY_D] += 1
            emit("produce_valid", i, "sender", False, False,
                 (sh[RS_FREE] - 1, sh[RS_QPERR]), q)
        # sender: produce the final marker (reserved buffer, no pool)
        if p[RD_TO_SEND] == 0 and not p[RD_FINAL_SENT]:
            q = list(p)
            q[RD_FINAL_SENT] = 1
            q[RD_VFLY_F] += 1
            emit("produce_valid_final", i, "sender", True, False, sh, q)
        # receiver: a ValidArr write lands (RC FIFO: finals after data)
        if p[RD_VFLY_D] > 0:
            q = list(p)
            q[RD_VFLY_D] -= 1
            q[RD_PEND_D] += 1
            emit("valid_arrive", i, "receiver", True, False, sh, q)
        if p[RD_VFLY_F] > 0 and p[RD_VFLY_D] == 0:
            q = list(p)
            q[RD_VFLY_F] -= 1
            q[RD_PEND_F] += 1
            emit("valid_arrive_final", i, "receiver", True, False, sh, q)
        # receiver: the pump joins pending addresses with local buffers
        # (FIFO over pending_remote, so the final reads after the data)
        if p[RD_PEND_D] > 0 and p[RD_LFREE] > 0:
            q = list(p)
            q[RD_PEND_D] -= 1
            q[RD_LFREE] -= 1
            q[RD_RFLY_D] += 1
            emit("post_read", i, "receiver", True, False, sh, q)
        if p[RD_PEND_F] > 0 and p[RD_PEND_D] == 0 and p[RD_LFREE] > 0:
            q = list(p)
            q[RD_PEND_F] -= 1
            q[RD_LFREE] -= 1
            q[RD_RFLY_F] += 1
            emit("post_read_final", i, "receiver", True, False, sh, q)
        # receiver: a Read completes
        if p[RD_RFLY_D] > 0:
            q = list(p)
            q[RD_RFLY_D] -= 1
            q[RD_HELD] += 1
            emit("read_done", i, "receiver", True, False, sh, q)
        if p[RD_RFLY_F] > 0:
            q = list(p)
            q[RD_RFLY_F] -= 1
            q[RD_FINAL_SEEN] = 1
            q[RD_LFREE] += 1      # marker read: local buffer recycles now
            q[RD_FFLY_F] += 1     # return the marker through FreeArr
            emit("read_done_final", i, "receiver", True, False, sh, q)
        # receiver: application releases a held buffer
        if p[RD_HELD] > 0:
            q = list(p)
            q[RD_HELD] -= 1
            q[RD_LFREE] += 1
            q[RD_FFLY_D] += 1
            emit("release", i, "receiver", True, False, sh, q)
        # sender: a FreeArr return lands -> pool buffer recycles
        if p[RD_FFLY_D] > 0:
            q = list(p)
            q[RD_FFLY_D] -= 1
            emit("free_arrive", i, "sender", False, False,
                 (sh[RS_FREE] + 1, sh[RS_QPERR]), q)
        if p[RD_FFLY_F] > 0:
            q = list(p)
            q[RD_FFLY_F] -= 1
            emit("free_arrive_final", i, "sender", True, False, sh, q)

    def _write_successors(self, sh: Tuple, p: Tuple, i: int, emit) -> None:
        # sender: pop a free remote buffer, Write data + notification
        if p[WR_TO_SEND] > 0 and p[WR_RFREE] > 0 and sh[RS_FREE] > 0:
            q = list(p)
            q[WR_TO_SEND] -= 1
            q[WR_RFREE] -= 1
            q[WR_WCQE] += 1
            q[WR_NVALID_D] += 1
            emit("write_data", i, "sender", False, False,
                 (sh[RS_FREE] - 1, sh[RS_QPERR]), q)
        # sender: the signaled data Write completes -> local buffer free
        if p[WR_WCQE] > 0:
            q = list(p)
            q[WR_WCQE] -= 1
            emit("poll_write_cqe", i, "sender", False, False,
                 (sh[RS_FREE] + 1, sh[RS_QPERR]), q)
        # sender: the final marker still consumes a remote buffer
        if p[WR_TO_SEND] == 0 and not p[WR_FINAL_SENT] and p[WR_RFREE] > 0:
            q = list(p)
            q[WR_RFREE] -= 1
            q[WR_FINAL_SENT] = 1
            q[WR_NVALID_F] += 1
            emit("write_final", i, "sender", True, False, sh, q)
        # receiver: a ValidArr notification lands (RC ordering: the data
        # Write on the same QP landed first; finals after data)
        if p[WR_NVALID_D] > 0:
            q = list(p)
            q[WR_NVALID_D] -= 1
            q[WR_HELD] += 1
            emit("valid_arrive", i, "receiver", True, False, sh, q)
        if p[WR_NVALID_F] > 0 and p[WR_NVALID_D] == 0:
            q = list(p)
            q[WR_NVALID_F] -= 1
            q[WR_FINAL_SEEN] = 1
            q[WR_FFLY] += 1       # final's buffer returns straight away
            emit("valid_arrive_final", i, "receiver", True, False, sh, q)
        # receiver: application releases a held buffer through FreeArr
        if p[WR_HELD] > 0:
            q = list(p)
            q[WR_HELD] -= 1
            q[WR_FFLY] += 1
            emit("release", i, "receiver", True, False, sh, q)
        # sender: a FreeArr return lands -> remote buffer known free
        if p[WR_FFLY] > 0:
            q = list(p)
            q[WR_FFLY] -= 1
            q[WR_RFREE] += 1
            emit("free_arrive", i, "sender", True, False, sh, q)

    def _wedge(self, p: Tuple) -> List:
        q = [0] * len(p)
        if self.role == "write":
            # flushed error CQEs still recycle the sender's local
            # buffers; everything else is abandoned
            q[WR_WCQE] = p[WR_WCQE]
            q[WR_FINAL_SENT] = p[WR_FINAL_SENT]
            q[WR_FLAGS] = p[WR_FLAGS] | WEDGED
        else:
            q[RD_FINAL_SENT] = p[RD_FINAL_SENT]
            q[RD_FLAGS] = p[RD_FLAGS] | WEDGED
        return q

    # -- properties ---------------------------------------------------------

    def terminal(self, state: Any) -> Optional[str]:
        peers = state[1:]
        if all(self._done(p) for p in peers):
            return "done"
        return None

    def check(self, state: Any) -> Tuple[Tuple[str, str], ...]:
        sh = state[0]
        peers = state[1:]
        found: List[Tuple[str, str]] = []
        wedged = any(p[-1] & WEDGED for p in peers)
        pool_out = 0
        for i, p in enumerate(peers):
            if p[-1] & WEDGED:
                if self.role == "write":
                    pool_out += p[WR_WCQE]
                continue
            if self.role == "read":
                valid_fly = p[RD_VFLY_D] + p[RD_VFLY_F]
                free_fly = p[RD_FFLY_D] + p[RD_FFLY_F]
                pool_out += (p[RD_VFLY_D] + p[RD_PEND_D] + p[RD_RFLY_D]
                             + p[RD_HELD] + p[RD_FFLY_D])
                local = (p[RD_LFREE] + p[RD_RFLY_D] + p[RD_RFLY_F]
                         + p[RD_HELD])
                if local != self.bound.window:
                    found.append((
                        "credit-conservation",
                        f"peer {i}: LocalArr leak — {local} buffers "
                        f"accounted for a window of {self.bound.window}"))
            else:
                valid_fly = p[WR_NVALID_D] + p[WR_NVALID_F]
                free_fly = p[WR_FFLY]
                pool_out += p[WR_WCQE]
                window = (p[WR_RFREE] + p[WR_NVALID_D] + p[WR_NVALID_F]
                          + p[WR_HELD] + p[WR_FFLY])
                if window != self.bound.window:
                    found.append((
                        "credit-conservation",
                        f"peer {i}: remote-buffer leak — {window} addresses "
                        f"accounted for a window of {self.bound.window}"))
            if valid_fly > self.valid.cap:
                found.append((
                    "ring-consistency",
                    f"peer {i}: {valid_fly} in-flight {self.valid.name} "
                    f"values for {self.valid.cap} slots (overrun)"))
            if free_fly > self.free.cap:
                found.append((
                    "ring-consistency",
                    f"peer {i}: {free_fly} in-flight {self.free.name} "
                    f"values for {self.free.cap} slots (overrun)"))
        if not wedged and sh[RS_FREE] + pool_out != self.bound.sender_buffers:
            found.append((
                "credit-conservation",
                f"sender pool leak: {sh[RS_FREE]} free + {pool_out} in "
                f"flight != {self.bound.sender_buffers} buffers"))
        return tuple(found)

    def describe_state(self, state: Any) -> Dict[str, Any]:
        sh = state[0]
        keys = _RD_KEYS if self.role == "read" else _WR_KEYS
        return {
            "shared": {"free_bufs": sh[RS_FREE],
                       "qp_error_budget": sh[RS_QPERR]},
            "peers": [dict(zip(keys, p)) for p in state[1:]],
        }


# -- extraction -------------------------------------------------------------

class NoProtocolModelError(LookupError):
    """The endpoint kind exposes no ``protocol_model`` hook."""

    def __init__(self, kind: str):
        super().__init__(kind)
        self.kind = kind

    def __str__(self) -> str:
        return (f"endpoint kind {self.kind!r} exposes no protocol_model() "
                f"hook; modeled kinds: {', '.join(modeled_kinds())}")


def extract_model(kind: str, bound: Optional[ModelBound] = None
                  ) -> ProtocolModel:
    """Build the protocol model of a registered endpoint kind.

    Resolves the kind through the transport registry and calls the send
    class's ``protocol_model(bound)`` classmethod — the hook each design
    module defines next to the code it models.
    """
    import repro.core.designs  # noqa: F401  (registers the built-in kinds)
    be = backend(kind)
    hook = getattr(be.send_cls, "protocol_model", None)
    if hook is None:
        raise NoProtocolModelError(kind)
    return hook(bound if bound is not None else ModelBound())


def modeled_kinds(include_test: bool = False) -> Tuple[str, ...]:
    """Registered endpoint kinds that expose a protocol model.

    Kinds named ``*_TEST`` are fault-injection scratch kinds registered
    by the test suite (planted bugs); they are excluded from default
    sweeps so ``--all-kinds`` and ``pytest --repro-model`` verify only
    the real designs — pass ``include_test=True`` (or name them with
    ``--kind``) to reach them.
    """
    import repro.core.designs  # noqa: F401
    return tuple(
        k for k in registered_kinds()
        if (include_test or not k.endswith("_TEST"))
        and getattr(backend(k).send_cls, "protocol_model", None)
        is not None)
