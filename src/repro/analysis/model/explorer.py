"""Bounded explicit-state exploration with ample-set reduction.

Breadth-first search over a :class:`~repro.analysis.model.core.
ProtocolModel`'s reachable states, interning every state once and
keeping parent pointers so the first path found to any state is a
shortest one — counterexamples come out minimal for free.

The optional partial-order reduction picks, per state, one peer-stream
whose enabled transitions provably commute with every other enabled
transition and expands only that stream (an *ample set*).  The
conditions enforced:

* every enabled transition of the candidate stream is local to it and
  not a fault, and no group transition (touching all streams) is
  enabled;
* the stream has no disabled shared-gated transition another stream
  could enable (:meth:`ProtocolModel.por_shared_gated` — condition C1);
* each ample successor satisfies exactly the invariants the current
  state satisfies (per-occurrence invisibility — condition C2);
* each ample successor is a fresh state (cycle proviso — condition C3).

The reduction is used as an accelerator for the passing case only: the
checker re-explores without it whenever anything is flagged, so every
reported verdict and every counterexample comes from the full graph
(see :mod:`repro.analysis.model.checker`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.model.core import Action, ProtocolModel

__all__ = ["ExploreResult", "explore"]


@dataclass
class ExploreResult:
    """Everything one exploration learned about the state graph."""

    model: ProtocolModel
    por: bool
    #: distinct states interned.
    states: int
    #: transitions taken (after reduction, if any).
    transitions: int
    #: False when the max_states cap truncated the search.
    complete: bool
    #: terminal classification -> count ("done" / "degraded").
    terminals: Dict[str, int]
    #: ids of non-terminal states with no enabled transition.
    deadlocks: List[int]
    #: property name -> (state id, message) for the first state found
    #: violating it (BFS order: a minimal witness).
    violations: Dict[str, Tuple[int, str]]
    #: ids of states from which no terminal state is reachable, i.e.
    #: eventual-delivery offenders (None when the search was truncated).
    #: Computed on the graph as explored: with the reduction on, a clean
    #: result covers the reduced state set (each visited state's reduced
    #: path to a terminal is also a full-graph path); the checker
    #: re-explores without the reduction to confirm any offender.
    no_terminal_path: Optional[List[int]]
    elapsed: float
    #: interned states, id -> state.
    state_table: List[Any] = field(repr=False)
    #: id -> (parent id, action) or None for the initial state.
    parents: List[Optional[Tuple[int, Action]]] = field(repr=False)

    def path_to(self, state_id: int) -> List[Tuple[Optional[Action], Any]]:
        """Shortest path from the initial state as
        ``[(None, s0), (a1, s1), ..., (ak, target)]``."""
        steps: List[Tuple[Optional[Action], Any]] = []
        cur: Optional[int] = state_id
        while cur is not None:
            link = self.parents[cur]
            if link is None:
                steps.append((None, self.state_table[cur]))
                cur = None
            else:
                parent, action = link
                steps.append((action, self.state_table[cur]))
                cur = parent
        steps.reverse()
        return steps


def _ample(model: ProtocolModel, state: Any, current_id: int,
           trans: List[Tuple[Action, Any]],
           seen: Dict[Any, int],
           cur_checks: Tuple[Tuple[str, str], ...],
           ) -> List[Tuple[Action, Any]]:
    """Pick an ample subset of ``trans``, or return ``trans`` unchanged."""
    by_peer: Dict[int, List[Tuple[Action, Any]]] = {}
    disqualified = set()
    for act, ns in trans:
        if act.peer is None:
            return trans  # a group action touches every stream
        if act.local and not act.fault:
            by_peer.setdefault(act.peer, []).append((act, ns))
        else:
            disqualified.add(act.peer)
    for peer in sorted(by_peer):
        if peer in disqualified:
            continue
        if model.por_shared_gated(state, peer):
            continue
        candidate = by_peer[peer]
        ok = True
        for _act, ns in candidate:
            # C3 (BFS cycle proviso): the successor must not be an
            # already-expanded state — any cycle then contains at least
            # one fully expanded state, so no action is ignored forever.
            j = seen.get(ns)
            if j is not None and j <= current_id:
                ok = False
                break
            if model.check(ns) != cur_checks:  # C2: invisible here
                ok = False
                break
        if ok:
            return candidate
    return trans


def explore(model: ProtocolModel, por: bool = True) -> ExploreResult:
    """Explore the model's reachable states breadth-first."""
    t0 = time.perf_counter()
    max_states = model.bound.max_states
    init = model.initial()
    states: List[Any] = [init]
    seen: Dict[Any, int] = {init: 0}
    parents: List[Optional[Tuple[int, Action]]] = [None]
    succ_ids: List[List[int]] = []
    terminals: Dict[str, int] = {}
    terminal_ids: List[int] = []
    deadlocks: List[int] = []
    violations: Dict[str, Tuple[int, str]] = {}
    transitions = 0
    complete = True

    i = 0
    while i < len(states):
        s = states[i]
        found = model.check(s)
        for prop, msg in found:
            violations.setdefault(prop, (i, msg))
        term = model.terminal(s)
        if term is not None:
            terminals[term] = terminals.get(term, 0) + 1
            terminal_ids.append(i)
            succ_ids.append([])
            i += 1
            continue
        trans = model.successors(s)
        if not trans:
            deadlocks.append(i)
            succ_ids.append([])
            i += 1
            continue
        if por:
            trans = _ample(model, s, i, trans, seen, found)
        row: List[int] = []
        for act, ns in trans:
            j = seen.get(ns)
            if j is None:
                if len(states) >= max_states:
                    complete = False
                    continue
                j = len(states)
                seen[ns] = j
                states.append(ns)
                parents.append((i, act))
            transitions += 1
            row.append(j)
        succ_ids.append(row)
        i += 1

    # Eventual delivery: a state with no path to any terminal is stuck
    # (a deadlock, a livelock cycle, or a silently wedged stream).
    no_terminal_path: Optional[List[int]] = None
    if complete:
        reach = bytearray(len(states))
        rev: List[List[int]] = [[] for _ in states]
        for u, row in enumerate(succ_ids):
            for v in row:
                rev[v].append(u)
        stack = list(terminal_ids)
        for t in stack:
            reach[t] = 1
        while stack:
            v = stack.pop()
            for u in rev[v]:
                if not reach[u]:
                    reach[u] = 1
                    stack.append(u)
        no_terminal_path = [u for u in range(len(states)) if not reach[u]]

    return ExploreResult(
        model=model, por=por, states=len(states), transitions=transitions,
        complete=complete, terminals=terminals, deadlocks=deadlocks,
        violations=violations, no_terminal_path=no_terminal_path,
        elapsed=time.perf_counter() - t0,
        state_table=states, parents=parents,
    )
