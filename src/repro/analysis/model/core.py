"""Model-checker core types: bounds, actions, the ProtocolModel base.

A :class:`ProtocolModel` is a finite transition system over hashable
states (nested tuples).  The explorer only needs four operations —
``initial``, ``successors``, ``terminal`` and ``check`` — plus
``describe_state`` for rendering counterexamples.  Concrete models for
the paper's flow-control protocols live in
:mod:`repro.analysis.model.protocols`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Any, Dict, List, NamedTuple, Optional, Tuple

__all__ = [
    "Action",
    "ModelBound",
    "ProtocolModel",
    "parse_bound",
]


@dataclass(frozen=True)
class ModelBound:
    """Exploration bounds: the finite instance of the protocol checked.

    The defaults are the smallest instance that still exercises every
    protocol mechanism (two peers interleaving, a window smaller than
    the message count so credit must turn over, one message loss and one
    credit loss where the transport is lossy).  Fault budgets count
    *fault transitions available*, not mandatory faults — the fault-free
    executions are always a subset of the explored space.

    ``qp_errors`` defaults to 0: none of the five paper designs
    implements QP-error recovery yet (ROADMAP direction 5), so a QP
    error provably wedges the stage — raise the budget to make the
    checker produce that trace.
    """

    #: receive-side peers the sender fans out to.
    peers: int = 2
    #: data messages per peer-stream (plus one final marker each).
    messages: int = 2
    #: receiver window: Receives initially posted = initial credit.
    window: int = 2
    #: Receives per credit write-back (§5.1.1).
    credit_frequency: int = 2
    #: sender transmission-pool buffers shared across peers (§4.2).
    sender_buffers: int = 2
    #: lossy transports only: data datagrams that may be dropped.
    data_loss: int = 1
    #: lossy transports only: credit datagrams that may be dropped.
    credit_loss: int = 1
    #: lossy transports only: final markers that may be dropped (default
    #: 0 — see DESIGN.md: a lost final is an *undetected* wedge).
    final_loss: int = 0
    #: QP-error faults (RC: one connection; UD: the one shared QP).
    qp_errors: int = 0
    #: explorer cap on distinct states before giving up (incomplete).
    max_states: int = 500_000

    def describe(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


def parse_bound(spec: str, base: Optional[ModelBound] = None) -> ModelBound:
    """Parse ``"key=value,key=value"`` overrides onto ``base``."""
    bound = base if base is not None else ModelBound()
    if not spec:
        return bound
    known = {f.name for f in fields(ModelBound)}
    overrides: Dict[str, int] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, value = part.partition("=")
        key = key.strip()
        if not sep or key not in known:
            raise ValueError(
                f"unknown bound {key!r}; known: {', '.join(sorted(known))}")
        try:
            overrides[key] = int(value)
        except ValueError:
            raise ValueError(f"bound {key!r} needs an integer, got "
                             f"{value.strip()!r}") from None
    return replace(bound, **overrides)


class Action(NamedTuple):
    """One labelled transition.

    ``peer`` is the peer-stream index the action belongs to (``None``
    for group actions touching every stream).  ``local`` marks actions
    that read and write only that peer-stream's variables — the
    commutativity the partial-order reduction exploits; anything that
    touches shared state (the sender buffer pool) is non-local.
    ``site`` ("sender" / "receiver" / "fabric") picks the trace process
    a counterexample step renders under.
    """

    name: str
    peer: Optional[int]
    site: str
    local: bool
    fault: bool


class ProtocolModel:
    """Base for finite protocol transition systems.

    States are nested tuples (hashable, comparable); subclasses define
    the layout.  ``check`` returns the invariant violations *holding in*
    a state as ``(property, message)`` pairs — the explorer evaluates it
    on every reachable state.  ``terminal`` classifies quiescent states
    ("done", or "degraded" when a failure was cleanly detected); the
    explorer treats them as absorbing.
    """

    #: model name (usually the endpoint kind).
    name: str = "?"
    #: protocol family: "credit" or "ring".
    family: str = "?"
    bound: ModelBound

    def initial(self) -> Any:
        raise NotImplementedError

    def successors(self, state: Any) -> List[Tuple[Action, Any]]:
        raise NotImplementedError

    def terminal(self, state: Any) -> Optional[str]:
        raise NotImplementedError

    def check(self, state: Any) -> Tuple[Tuple[str, str], ...]:
        raise NotImplementedError

    def describe_state(self, state: Any) -> Dict[str, Any]:
        raise NotImplementedError

    def por_shared_gated(self, state: Any, peer: int) -> bool:
        """Partial-order-reduction side condition (ample-set C1).

        Return ``True`` if this peer-stream has a *currently disabled*
        transition whose guard reads shared state and could therefore be
        flipped by other peers' actions alone (e.g. a send blocked only
        on the shared buffer pool).  Such a peer must not serve as an
        ample candidate: another peer could free a buffer and run the
        dependent send before the deferred local action, an interleaving
        the reduced graph would miss.  The conservative default refuses
        every candidate, i.e. disables the reduction.
        """
        return True
