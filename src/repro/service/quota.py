"""Per-tenant resource quotas for the multi-tenant shuffle service.

RDMA state is a shared, finite resource: QP contexts compete for the
NIC's context cache and registered buffers pin host memory (§2.2, Fig 2).
When several tenants share one fabric, a single tenant picking an
MQ-style design can create O(n·t) Queue Pairs and thrash the cache for
everyone (the Fig 10/11 degradation mechanism, now cross-tenant).  The
:class:`QuotaManager` makes that arbitration explicit:

* it is installed on the fabric via ``Cluster.enable_quotas()`` and
  called by the verbs layer (duck-typed, like the sanitizer hook) for
  every tenant-tagged QP creation/destruction and MR (de)registration;
* hard caps turn an over-budget creation into a
  :class:`QuotaExceededError` *at the verbs layer* — the backstop;
* admission control uses :func:`estimate_footprint` — a deliberately
  generous over-approximation of a job's cluster-wide footprint — so an
  admitted job never trips the backstop mid-setup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Union

from repro.core.designs import Design
from repro.core.endpoint import EndpointConfig
from repro.core.policy import plan_footprint

__all__ = [
    "QuotaExceededError",
    "TenantUsage",
    "QuotaManager",
    "estimate_footprint",
]


class QuotaExceededError(RuntimeError):
    """A tenant attempted to exceed its QP or registered-memory cap."""


@dataclass
class TenantUsage:
    """Live cluster-wide resource usage of one tenant."""

    qps: int = 0
    registered_bytes: int = 0
    #: high-water marks (reported by the per-tenant rollups).
    peak_qps: int = 0
    peak_registered_bytes: int = 0
    #: creations refused by the hard cap.
    qp_denials: int = 0
    mr_denials: int = 0


@dataclass
class TenantQuota:
    """Caps for one tenant; ``None`` means unlimited."""

    max_qps: Optional[int] = None
    max_registered_bytes: Optional[int] = None


@dataclass(frozen=True)
class Footprint:
    """Estimated cluster-wide resource footprint of one job."""

    qps: int
    registered_bytes: int


class QuotaManager:
    """Cluster-wide per-tenant QP and registered-memory accounting.

    Resources tagged with ``tenant=None`` (single-query benchmarks, the
    baselines) are never charged, so installing a manager on a fabric
    is free for non-service workloads.
    """

    def __init__(self):
        self._quotas: Dict[str, TenantQuota] = {}
        self._usage: Dict[str, TenantUsage] = {}

    # -- configuration -----------------------------------------------------

    def set_quota(self, tenant: str, max_qps: Optional[int] = None,
                  max_registered_bytes: Optional[int] = None) -> None:
        """Cap ``tenant``'s cluster-wide QP count / registered bytes."""
        self._quotas[tenant] = TenantQuota(max_qps, max_registered_bytes)

    def quota(self, tenant: str) -> TenantQuota:
        return self._quotas.get(tenant, TenantQuota())

    def usage(self, tenant: str) -> TenantUsage:
        account = self._usage.get(tenant)
        if account is None:
            account = self._usage[tenant] = TenantUsage()
        return account

    # -- admission ---------------------------------------------------------

    def can_admit(self, tenant: str, footprint: Footprint) -> bool:
        """Would ``footprint`` fit under ``tenant``'s caps right now?"""
        quota = self.quota(tenant)
        account = self.usage(tenant)
        if quota.max_qps is not None and \
                account.qps + footprint.qps > quota.max_qps:
            return False
        if quota.max_registered_bytes is not None and \
                account.registered_bytes + footprint.registered_bytes \
                > quota.max_registered_bytes:
            return False
        return True

    # -- verbs-layer hooks (duck-typed; see repro.verbs.device) -------------

    def on_qp_created(self, node_id: int, tenant: Optional[str],
                      qp: Any) -> None:
        if tenant is None:
            return
        quota = self.quota(tenant)
        account = self.usage(tenant)
        if quota.max_qps is not None and account.qps + 1 > quota.max_qps:
            account.qp_denials += 1
            raise QuotaExceededError(
                f"tenant {tenant!r}: QP cap {quota.max_qps} reached "
                f"(node {node_id})")
        account.qps += 1
        account.peak_qps = max(account.peak_qps, account.qps)

    def on_qp_destroyed(self, node_id: int, tenant: Optional[str],
                        qp: Any) -> None:
        if tenant is None:
            return
        self.usage(tenant).qps -= 1

    def on_mr_registered(self, node_id: int, tenant: Optional[str],
                         mr: Any) -> None:
        if tenant is None:
            return
        quota = self.quota(tenant)
        account = self.usage(tenant)
        if quota.max_registered_bytes is not None and \
                account.registered_bytes + mr.length \
                > quota.max_registered_bytes:
            account.mr_denials += 1
            raise QuotaExceededError(
                f"tenant {tenant!r}: registered-memory cap "
                f"{quota.max_registered_bytes} B reached (node {node_id})")
        account.registered_bytes += mr.length
        account.peak_registered_bytes = max(
            account.peak_registered_bytes, account.registered_bytes)

    def on_mr_deregistered(self, node_id: int, tenant: Optional[str],
                           mr: Any) -> None:
        if tenant is None:
            return
        self.usage(tenant).registered_bytes -= mr.length

    # -- reporting ---------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        """JSON-ready per-tenant usage (telemetry callback payload)."""
        return {
            tenant: {
                "qps": account.qps,
                "registered_bytes": account.registered_bytes,
                "peak_qps": account.peak_qps,
                "peak_registered_bytes": account.peak_registered_bytes,
                "qp_denials": account.qp_denials,
                "mr_denials": account.mr_denials,
            }
            for tenant, account in sorted(self._usage.items())
        }


def estimate_footprint(design: Union[str, Design], nodes: int, threads: int,
                       num_endpoints: Optional[int] = None,
                       config: Optional[EndpointConfig] = None) -> Footprint:
    """Generous cluster-wide footprint estimate for one shuffle job.

    A thin wrapper over :func:`repro.core.policy.plan_footprint` — the
    one shared formula that admission, policy clamping, and planning
    all use (it mirrors the stage's config derivation and applies a 2x
    safety margin; the conformance test asserts estimate >= actual for
    every design).
    """
    qps, registered = plan_footprint(design, nodes, threads,
                                     num_endpoints=num_endpoints,
                                     config=config)
    return Footprint(qps=qps, registered_bytes=registered)
