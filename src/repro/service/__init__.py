"""Multi-tenant shuffle service: scheduler, admission, quotas.

A job/scheduler layer above :class:`~repro.cluster.Cluster` that runs an
open-loop stream of shuffle jobs from N tenants on one shared fabric,
with pluggable admission policies and per-tenant QP / registered-memory
quota caps enforced through the verbs layer.
"""

from repro.service.jobs import Job, JobQueue, TenantSpec
from repro.service.quota import (
    Footprint,
    QuotaExceededError,
    QuotaManager,
    TenantUsage,
    estimate_footprint,
)
from repro.service.scheduler import (
    POLICIES,
    FairSharePolicy,
    FifoPolicy,
    ServiceConfig,
    ShuffleService,
)

__all__ = [
    "Job",
    "JobQueue",
    "TenantSpec",
    "Footprint",
    "QuotaExceededError",
    "QuotaManager",
    "TenantUsage",
    "estimate_footprint",
    "POLICIES",
    "FairSharePolicy",
    "FifoPolicy",
    "ServiceConfig",
    "ShuffleService",
]
