"""The shuffle service: open-loop job streams on one shared fabric.

The paper evaluates one shuffle at a time on a dedicated cluster; a
parallel database *service* runs many concurrent queries from several
tenants on one fabric.  :class:`ShuffleService` closes that gap:

* per-tenant arrival processes push :class:`~repro.service.jobs.Job`\\ s
  onto a :class:`~repro.service.jobs.JobQueue` (open loop, seeded
  exponential gaps — deterministic across runs);
* a scheduler sim-process admits jobs under a pluggable admission
  policy (:class:`FifoPolicy` / :class:`FairSharePolicy`) and a
  concurrency limit, optionally arbitrated by a
  :class:`~repro.service.quota.QuotaManager` (defer while a tenant's
  headroom is exhausted);
* each job is *planned* by its tenant's
  :class:`~repro.core.policy.ShufflePolicy` (a StaticPolicy of the
  tenant's fixed design unless the spec carries one): the policy picks
  the design, clamps the endpoint count under the tenant's caps (an MQ
  tenant degrades toward SQ rather than monopolizing the NIC's context
  cache), and — fed measured telemetry between jobs via
  :meth:`~repro.core.policy.ShufflePolicy.observe` — may switch designs
  mid-run when QP-cache misses or credit stalls cross its thresholds;
* each admitted job builds a tenant-tagged
  :class:`~repro.core.stage.ShuffleStage` from its plan, runs the §5.1
  repartition fragments, harvests per-tenant transport stats (bytes,
  credit stalls, QP-cache misses), and tears the stage down (PR 7
  dispose discipline) so the next job starts from clean NIC state.

Everything is simulated time; repeated runs with one seed reproduce the
same completion order and metrics bit-for-bit.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.cluster import Cluster
from repro.core.endpoint import EndpointConfig
from repro.core.groups import TransmissionGroups
from repro.core.receive import ReceiveOperator
from repro.core.policy import (
    StageContext,
    StagePlan,
    StaticPolicy,
    TelemetrySnapshot,
)
from repro.core.shuffle import ShuffleOperator, striped_partitioner
from repro.engine.fragment import CountSink, QueryFragment, run_fragments
from repro.engine.scan import RepeatedSourceOperator
from repro.sim import AllOf
from repro.telemetry.metrics import latency_summary

from repro.service.jobs import Job, JobQueue, TenantSpec
from repro.service.quota import (
    Footprint,
    QuotaExceededError,
    QuotaManager,
    estimate_footprint,
)

__all__ = [
    "ServiceConfig",
    "FifoPolicy",
    "FairSharePolicy",
    "POLICIES",
    "ShuffleService",
]


@dataclass(frozen=True)
class ServiceConfig:
    """Scheduler tunables."""

    #: jobs allowed in flight simultaneously (placement slots).
    max_concurrent: int = 2
    #: seed for the per-tenant arrival processes.
    seed: int = 1
    #: quiesce window between a job's last fragment completing and its
    #: stage teardown: trailing completions (RC acks, credit write-backs)
    #: must land while the job's QPs and MRs still exist.
    teardown_grace_ns: int = 2_000_000


class FifoPolicy:
    """Strict arrival order; a blocked head of line blocks everyone."""

    name = "fifo"

    def pick(self, service: "ShuffleService",
             pending: List[Job]) -> Optional[Job]:
        if not pending:
            return None
        head = pending[0]
        return head if service.headroom_ok(head) else None


class FairSharePolicy:
    """Least-served tenant first, skipping quota-blocked jobs.

    "Served" counts admitted jobs; ties break on tenant name, then
    arrival order — fully deterministic.
    """

    name = "fair"

    def pick(self, service: "ShuffleService",
             pending: List[Job]) -> Optional[Job]:
        candidates = [job for job in pending if service.headroom_ok(job)]
        if not candidates:
            return None
        return min(candidates, key=lambda job: (
            service.started_by_tenant.get(job.tenant.name, 0),
            job.tenant.name,
            job.arrival_ns,
            job.index,
        ))


POLICIES = {"fifo": FifoPolicy, "fair": FairSharePolicy}


class ShuffleService:
    """Run N tenants' open-loop shuffle streams on one shared cluster."""

    def __init__(self, cluster: Cluster, tenants: List[TenantSpec],
                 policy: Optional[Any] = None,
                 quotas: Optional[QuotaManager] = None,
                 config: Optional[ServiceConfig] = None):
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names: {names}")
        self.cluster = cluster
        self.sim = cluster.sim
        self.tenants = list(tenants)
        self.policy = policy if policy is not None else FifoPolicy()
        self.config = config or ServiceConfig()
        self.quotas = quotas
        if quotas is not None:
            cluster.enable_quotas(quotas)
        self.queue = JobQueue(self.sim)
        #: jobs in completion order (the determinism-regression surface).
        self.completed: List[Job] = []
        self.completion_order: List[str] = []
        self.failed: List[Job] = []
        self.started_by_tenant: Dict[str, int] = {}
        self.running = 0
        #: per-tenant shuffle policies: the tenant's own, or a
        #: StaticPolicy of its fixed design (bit-identical to the
        #: historical inline design/clamp logic).
        self._policies = {
            t.name: (t.policy if t.policy is not None
                     else StaticPolicy(t.design,
                                       num_endpoints=t.num_endpoints))
            for t in tenants
        }
        #: the plan each admitted job was reserved under, so admission
        #: accounting and execution cannot diverge for adaptive tenants.
        self._plans: Dict[str, StagePlan] = {}
        self._decisions = cluster.telemetry.fabric_registry.counter(
            "service.policy_decisions")
        #: footprints reserved by admitted-but-unfinished jobs, so two
        #: concurrent admissions of one tenant cannot overshoot its cap.
        self._reserved: Dict[str, List[Footprint]] = {}
        #: every QPN a tenant's jobs ever created (QPNs are not reused,
        #: so per-job cache-miss attribution is exact after the fact).
        self._job_qpns: Dict[str, set] = {}
        # Per-QPN context-miss attribution on every NIC.
        for node in cluster.nodes:
            if node.nic.qp_miss_by_qpn is None:
                node.nic.qp_miss_by_qpn = {}
        cluster.telemetry.fabric_registry.register_callback(
            "service_tenants", self._telemetry_callback)

    # -- planning & quota headroom ------------------------------------------

    def stage_context(self, tenant: TenantSpec) -> StageContext:
        """The :class:`StageContext` a job of ``tenant`` plans against:
        cluster shape, the tenant's quota caps (the clamping inputs),
        and a live telemetry snapshot for adaptive policies."""
        quota = self.quotas.quota(tenant.name) \
            if self.quotas is not None else None
        return StageContext.from_cluster(
            self.cluster,
            message_size=(tenant.config or EndpointConfig()).message_size,
            bytes_per_node=tenant.bytes_per_job,
            config=tenant.config,
            num_endpoints=tenant.num_endpoints,
            max_qps=quota.max_qps if quota is not None else None,
            max_registered_bytes=(quota.max_registered_bytes
                                  if quota is not None else None),
            telemetry=TelemetrySnapshot.from_cluster(self.cluster),
        )

    def plan_for(self, tenant: TenantSpec) -> StagePlan:
        """Plan one job of ``tenant`` right now (clamping included).

        The per-design endpoint-count/clamping logic that used to be
        duplicated here and in ``service/quota.py`` now lives once, in
        the policy layer (:func:`repro.core.policy.plan_footprint` and
        the policies' quota clamp).
        """
        return self._policies[tenant.name].plan(self.stage_context(tenant))

    def job_footprint(self, job: Job,
                      plan: Optional[StagePlan] = None) -> Footprint:
        if plan is None:
            plan = self._plans.get(job.name) or self.plan_for(job.tenant)
        return estimate_footprint(
            plan.design, self.cluster.num_nodes,
            self.cluster.threads_per_node,
            num_endpoints=plan.num_endpoints,
            config=plan.apply(job.tenant.config))

    def headroom_ok(self, job: Job) -> bool:
        """May ``job`` be admitted right now under its tenant's caps?"""
        if self.quotas is None:
            return True
        tenant = job.tenant.name
        plan = self.plan_for(job.tenant)
        if not plan.runnable:
            return False
        fp = self.job_footprint(job, plan=plan)
        reserved = self._reserved.get(tenant, [])
        combined = Footprint(
            qps=fp.qps + sum(r.qps for r in reserved),
            registered_bytes=(fp.registered_bytes +
                              sum(r.registered_bytes for r in reserved)),
        )
        ok = self.quotas.can_admit(tenant, combined)
        if not ok:
            job.deferrals += 1
        return ok

    # -- the sim processes --------------------------------------------------

    def run(self) -> Dict[str, Any]:
        """Drive the whole service run to completion; returns the report."""
        return self.cluster.run_process(self._main(), name="service")

    def _main(self):
        sim = self.sim
        arrivals = [
            sim.process(self._arrivals(idx, tenant),
                        name=f"arrivals-{tenant.name}")
            for idx, tenant in enumerate(self.tenants)
        ]
        scheduler = sim.process(self._scheduler(), name="scheduler")
        yield AllOf(sim, arrivals)
        self.queue.close()
        yield scheduler
        return self.report()

    def _arrivals(self, index: int, tenant: TenantSpec):
        # Seeded by tenant *index*, never by name hashes: str hashes vary
        # with PYTHONHASHSEED and would break run-to-run determinism.
        rng = random.Random(self.config.seed * 1_000_003 + index)
        for i in range(tenant.jobs):
            gap = max(1, int(rng.expovariate(
                1.0 / tenant.mean_interarrival_ns)))
            yield self.sim.timeout(gap)
            self.queue.push(Job(tenant=tenant, index=i))

    def _scheduler(self):
        cfg = self.config
        while True:
            while self.running < cfg.max_concurrent:
                job = self.policy.pick(self, self.queue.peek_all())
                if job is None:
                    break
                self.queue.remove(job)
                self._admit(job)
            if self.queue.closed and self.running == 0:
                if not len(self.queue):
                    return
                # Nothing running, nothing admissible, no more arrivals:
                # the remaining jobs can never run (caps below even a
                # clamped single-endpoint footprint).  Fail them loudly
                # rather than hanging the simulation.
                for job in self.queue.peek_all():
                    self.queue.remove(job)
                    job.meta["failed"] = 1
                    self.failed.append(job)
                return
            yield self.queue.wait()

    def _admit(self, job: Job) -> None:
        tenant = job.tenant.name
        job.admitted_ns = self.sim.now
        self.started_by_tenant[tenant] = \
            self.started_by_tenant.get(tenant, 0) + 1
        # Plan once at admission: the same plan backs the reservation,
        # the decision trace, and the stage the job runs.
        plan = self.plan_for(job.tenant)
        self._plans[job.name] = plan
        self._record_decision(job, plan)
        if self.quotas is not None:
            self._reserved.setdefault(tenant, []).append(
                self.job_footprint(job, plan=plan))
        self.running += 1
        self.sim.process(self._run_job(job), name=f"job-{job.name}")

    def _record_decision(self, job: Job, plan: StagePlan) -> None:
        """Policy-decision telemetry: a counter, job metadata, and a
        trace instant on the scheduler track."""
        self._decisions.inc()
        job.meta["design"] = plan.design
        job.meta["policy"] = self._policies[job.tenant.name].describe()
        self.cluster.telemetry.tracer.instant(
            0, "scheduler", "policy-decision",
            args={"job": job.name, "design": plan.describe(),
                  "reason": plan.reason})

    def _run_job(self, job: Job):
        cluster = self.cluster
        tenant = job.tenant
        stage = None
        try:
            plan = self._plans.pop(job.name, None)
            if plan is None:
                plan = self.plan_for(tenant)
            if not plan.runnable:
                raise QuotaExceededError(
                    f"tenant {tenant.name!r} cannot fit any job under "
                    "its caps")
            base = plan.apply(tenant.config or EndpointConfig())
            config = dataclasses.replace(base, tenant=tenant.name)
            if plan.clamped:
                job.meta["clamped_endpoints"] = plan.num_endpoints
            groups = TransmissionGroups.repartition(cluster.num_nodes)
            stage = cluster.shuffle_stage(plan, groups, config=config)
            yield from stage.setup()
            qpns = {qp.qpn
                    for node in range(cluster.num_nodes)
                    for ep in stage._node_endpoints(node)
                    for qp in ep.qps()}
            self._job_qpns.setdefault(tenant.name, set()).update(qpns)
            job.qps_created = len(qpns)
            elapsed, sinks = yield from self._run_fragments(stage)
            job.finished_ns = self.sim.now
            job.meta["service_ns"] = elapsed
            job.bytes_received = sum(s.nbytes for s in sinks)
            job.credit_wait_ns = sum(
                ep.credit_wait_ns
                for eps in stage.send_endpoints.values() for ep in eps)
            job.credit_stalls = sum(
                ep.credit_stalls
                for eps in stage.send_endpoints.values() for ep in eps)
            job.qp_cache_misses = self._misses_for(qpns)
            self._observe(job, elapsed)
            self.completed.append(job)
            self.completion_order.append(job.name)
            # Let trailing completions (acks, credit write-backs) land
            # before destroying the QPs and MRs they reference.
            yield self.sim.timeout(self.config.teardown_grace_ns)
        except QuotaExceededError:
            # Admission underestimated (should not happen: the estimator
            # is deliberately generous).  Record and release the job.
            job.meta["failed"] = 1
            job.meta["quota_error"] = 1
            self.failed.append(job)
        finally:
            if stage is not None:
                stage.dispose()
            if self.quotas is not None:
                reserved = self._reserved.get(tenant.name)
                if reserved:
                    reserved.pop()
            self.running -= 1
            self.queue.kick()

    def _observe(self, job: Job, elapsed_ns: int) -> None:
        """Feed measured telemetry back to the tenant's policy — the
        mid-run re-plan hook.  The cache miss rate is cluster-wide and
        cumulative (the cache is shared: a tenant suffers its
        neighbours' thrash, which its plan-time context cannot
        predict); the credit-stall share is the job's own.
        """
        cluster = self.cluster
        base = TelemetrySnapshot.from_cluster(cluster)
        budget = max(1, elapsed_ns * cluster.threads_per_node *
                     cluster.num_nodes)
        observed = dataclasses.replace(
            base,
            credit_stall_share=min(1.0, job.credit_wait_ns / budget))
        self._policies[job.tenant.name].observe(observed)

    def _run_fragments(self, stage):
        """Build and run the §5.1 repartition fragments on ``stage``."""
        cluster = self.cluster
        threads = cluster.threads_per_node
        # Imported lazily: the template generator lives with the bench
        # workloads but has no dependency back on the service.
        from repro.bench.workloads import make_template_batch
        template = make_template_batch()
        fragments: List[QueryFragment] = []
        sinks: List[CountSink] = []
        bytes_per_node = self._bytes_per_node(stage)
        per_thread = max(template.nbytes, bytes_per_node // threads)
        for node_id in range(cluster.num_nodes):
            node = cluster.nodes[node_id]
            groups = stage.groups_for[node_id]
            source = RepeatedSourceOperator(node, template, threads,
                                            per_thread)
            shuffle = ShuffleOperator(
                node, source, stage.send_endpoints[node_id], groups,
                striped_partitioner(groups.num_groups), threads)
            fragments.append(QueryFragment(
                node, shuffle, threads, name=f"svc-shuffle-{node_id}"))
            receive = ReceiveOperator(node, stage.recv_endpoints[node_id],
                                      threads)
            sink = CountSink()
            sinks.append(sink)
            fragments.append(QueryFragment(
                node, receive, threads, sink=sink,
                name=f"svc-receive-{node_id}"))
        elapsed = yield from run_fragments(self.sim, fragments)
        return elapsed, sinks

    def _bytes_per_node(self, stage) -> int:
        tenant = stage.config.tenant
        for spec in self.tenants:
            if spec.name == tenant:
                return spec.bytes_per_job
        return 2 << 20

    def _misses_for(self, qpns) -> int:
        total = 0
        for node in self.cluster.nodes:
            by_qpn = node.nic.qp_miss_by_qpn
            if not by_qpn:
                continue
            total += sum(count for qpn, count in by_qpn.items()
                         if qpn in qpns)
        return total

    # -- reporting ----------------------------------------------------------

    def _telemetry_callback(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "completed": {
                t.name: sum(1 for j in self.completed
                            if j.tenant.name == t.name)
                for t in self.tenants
            },
            "pending": self.queue.pending_by_tenant(),
            "running": self.running,
        }
        if self.quotas is not None:
            out["usage"] = self.quotas.snapshot()
        return out

    def tenant_rollup(self) -> Dict[str, Dict[str, Any]]:
        """Per-tenant service metrics: p50/p99 job latency, bytes,
        credit stalls, QP-cache misses, quota counters."""
        rollup: Dict[str, Dict[str, Any]] = {}
        for spec in self.tenants:
            jobs = [j for j in self.completed if j.tenant.name == spec.name]
            latencies = [float(j.latency_ns) for j in jobs]
            entry: Dict[str, Any] = {
                "design": spec.design,
                "jobs_submitted": spec.jobs,
                "jobs_completed": len(jobs),
                "jobs_failed": sum(1 for j in self.failed
                                   if j.tenant.name == spec.name),
                "bytes_received": sum(j.bytes_received for j in jobs),
                "credit_wait_ns": sum(j.credit_wait_ns for j in jobs),
                "credit_stalls": sum(j.credit_stalls for j in jobs),
                "qp_cache_misses": sum(j.qp_cache_misses for j in jobs),
                "deferrals": sum(j.deferrals for j in jobs),
                "queue_wait_ns": sum(j.queue_wait_ns for j in jobs),
                "latency_ns": latency_summary(latencies,
                                              quantiles=(0.5, 0.9, 0.99)),
            }
            if self.quotas is not None:
                entry["usage"] = self.quotas.snapshot().get(spec.name, {})
            rollup[spec.name] = entry
        return rollup

    def report(self) -> Dict[str, Any]:
        return {
            "policy": getattr(self.policy, "name", "custom"),
            "quotas": self.quotas is not None,
            "completion_order": list(self.completion_order),
            "tenants": self.tenant_rollup(),
            "failed": [j.name for j in self.failed],
        }
