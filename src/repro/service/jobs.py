"""Tenants, jobs, and the arrival queue of the shuffle service.

A *tenant* is a traffic class: a shuffle design, a per-job volume, and
an open-loop arrival rate.  A *job* is one shuffle query submitted by a
tenant — the unit the scheduler admits, places, runs, and accounts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.endpoint import EndpointConfig
from repro.sim import Notify, Simulator

__all__ = ["TenantSpec", "Job", "JobQueue"]


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's traffic class."""

    name: str
    #: shuffle design this tenant's queries use (DESIGNS key).
    design: str = "MESQ/SR"
    #: per-node shuffle volume of one job.
    bytes_per_job: int = 2 << 20
    #: open-loop mean inter-arrival gap (exponential); the offered-load
    #: knob of the svc-tenants ablation.
    mean_interarrival_ns: int = 3_000_000
    #: jobs this tenant submits over the run.
    jobs: int = 4
    #: endpoint-count override (None: the design's natural count).
    num_endpoints: Optional[int] = None
    #: base endpoint configuration (None: EndpointConfig() defaults).
    config: Optional[EndpointConfig] = None
    #: per-job design selection (a :class:`~repro.core.policy.
    #: ShufflePolicy`); None runs a StaticPolicy of ``design`` —
    #: bit-identical to the historical fixed-design scheduler.  The
    #: scheduler feeds measured telemetry back to the policy between
    #: jobs, so an adaptive tenant can switch designs mid-run.
    policy: Optional[Any] = None


@dataclass
class Job:
    """One shuffle query moving through the service."""

    tenant: TenantSpec
    #: per-tenant sequence number (0-based).
    index: int
    #: simulated timestamps, -1 until reached.
    arrival_ns: int = -1
    admitted_ns: int = -1
    finished_ns: int = -1
    #: times admission deferred this job (quota headroom exhausted).
    deferrals: int = 0
    #: harvested transport stats (filled at completion).
    bytes_received: int = 0
    credit_wait_ns: int = 0
    credit_stalls: int = 0
    qp_cache_misses: int = 0
    qps_created: int = 0
    #: extra bookkeeping policies may attach (counters, the executed
    #: plan's design/reason, failure flags).
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return f"{self.tenant.name}/{self.index}"

    @property
    def latency_ns(self) -> int:
        """Arrival-to-completion time (queueing + service)."""
        if self.finished_ns < 0 or self.arrival_ns < 0:
            raise RuntimeError(f"job {self.name} has not completed")
        return self.finished_ns - self.arrival_ns

    @property
    def queue_wait_ns(self) -> int:
        if self.admitted_ns < 0 or self.arrival_ns < 0:
            raise RuntimeError(f"job {self.name} was never admitted")
        return self.admitted_ns - self.arrival_ns


class JobQueue:
    """Arrival-ordered queue of pending jobs with a wakeup signal.

    ``push`` never blocks (open-loop arrivals); the scheduler blocks on
    :meth:`wait` and drains via a policy's pick.  Arrival order is the
    deterministic tie-break every admission policy shares.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._pending: List[Job] = []
        self._signal = Notify(sim)
        #: True once every tenant's arrival process has finished.
        self.closed = False

    def __len__(self) -> int:
        return len(self._pending)

    def push(self, job: Job) -> None:
        job.arrival_ns = self.sim.now
        self._pending.append(job)
        self._signal.notify_all()

    def close(self) -> None:
        """No further arrivals; wake the scheduler so it can drain."""
        self.closed = True
        self._signal.notify_all()

    def wait(self):
        """Event fired on the next arrival (or close)."""
        return self._signal.wait()

    def kick(self) -> None:
        """Wake the scheduler without an arrival (job completion may
        have freed quota headroom for a deferred job)."""
        self._signal.notify_all()

    def peek_all(self) -> List[Job]:
        """The pending jobs in arrival order (policies must not mutate)."""
        return list(self._pending)

    def remove(self, job: Job) -> None:
        self._pending.remove(job)

    def pending_by_tenant(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for job in self._pending:
            counts[job.tenant.name] = counts.get(job.tenant.name, 0) + 1
        return counts
