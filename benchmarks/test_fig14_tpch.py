"""Figure 14: TPC-H query response time (MESQ/SR vs MPI vs local data)."""

from conftest import run_once, show

from repro.bench.experiments import fig14a, fig14_scaling


def test_fig14a_network_upgrade(benchmark):
    result = run_once(benchmark, fig14a, scale_factor=0.03, threads=4)
    show(result)
    mpi = result.series_by_label("MPI")
    mesq = result.series_by_label("MESQ/SR")
    local = result.series_by_label("local data")
    for i, network in enumerate(result.x):
        # MESQ/SR beats MPI and tracks the no-shuffle plan (§5.2.1).
        assert mesq.y[i] < mpi.y[i], network
        assert mesq.y[i] < 1.6 * local.y[i], network
    # Upgrading FDR -> EDR speeds up both, and MESQ/SR keeps pace with
    # the local-data improvement while MPI lags.
    assert mesq.y[1] < mesq.y[0]
    assert mpi.y[1] < mpi.y[0]


def test_fig14b_q4_scaling(benchmark):
    result = run_once(benchmark, fig14_scaling, "Q4",
                      scale_factor_per_node=0.004,
                      node_counts=(2, 4, 8), threads=4)
    show(result)
    for i in range(len(result.x)):
        assert result.series_by_label("MESQ/SR").y[i] < \
            result.series_by_label("MPI").y[i]


def test_fig14c_q3_scaling(benchmark):
    result = run_once(benchmark, fig14_scaling, "Q3",
                      scale_factor_per_node=0.004,
                      node_counts=(2, 8), threads=4)
    show(result)
    assert result.value("MESQ/SR", 8) < result.value("MPI", 8)


def test_fig14d_q10_scaling(benchmark):
    result = run_once(benchmark, fig14_scaling, "Q10",
                      scale_factor_per_node=0.004,
                      node_counts=(2, 8), threads=4)
    show(result)
    assert result.value("MESQ/SR", 8) < result.value("MPI", 8)
