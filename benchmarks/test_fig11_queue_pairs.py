"""Figure 11: effect of the number of Queue Pairs (EDR, 16 nodes)."""

from conftest import run_once, show

from repro.bench.experiments import fig11


def test_fig11_queue_pairs(benchmark):
    result = run_once(benchmark, fig11,
                      endpoint_counts=(1, 4, 8), scale=0.2)
    show(result)
    # The SQ/SR family reaches its best throughput with at most t QPs;
    # the MQ families need n*k QPs for theirs (paper: "MESQ/SR achieves
    # higher throughput ... with fewer Queue Pairs").
    sq = result.series_by_label("SQ/SR")
    mq_sr = result.series_by_label("MQ/SR")
    sq_best_qps = result.x[max(range(len(result.x)),
                               key=lambda i: (sq.y[i] or 0))]
    mq_best_qps = result.x[max(range(len(result.x)),
                               key=lambda i: (mq_sr.y[i] or 0))]
    assert sq_best_qps <= 8
    assert mq_best_qps >= 16
    best_sq = max(v for v in sq.y if v is not None)
    best_mq = max(v for v in mq_sr.y if v is not None)
    assert best_sq > 0.85 * best_mq
