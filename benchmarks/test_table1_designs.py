"""Table 1: the design-property matrix, cross-checked against live stages."""

from conftest import run_once, show

from repro.bench.experiments import table1
from repro.cluster import Cluster
from repro.core.groups import TransmissionGroups
from repro.core.stage import ShuffleStage
from repro.fabric.config import EDR, ClusterConfig


def test_table1(benchmark):
    result = run_once(benchmark, table1, nodes=16, threads=8)
    show(result)
    qps = dict(zip(result.x, result.series_by_label("QPs/op").y))
    assert qps["MEMQ/SR"] == 16 * 8
    assert qps["SEMQ/SR"] == 16
    assert qps["MESQ/SR"] == 8
    assert qps["SESQ/SR"] == 1

    # Verify the static Table-1 counts against QPs actually created by a
    # live stage (send + receive operators on one node).
    for name, per_table in qps.items():
        cluster = Cluster(ClusterConfig(network=EDR, num_nodes=16,
                                        threads_per_node=8))
        stage = ShuffleStage(cluster.fabric, name,
                             TransmissionGroups.repartition(16),
                             registry=cluster.registry)
        cluster.run_process(stage.setup())  # QPs are created at setup
        assert stage.qps_created(0) == 2 * per_table, name
