"""Figure 9: effect of the RC message size on throughput and memory."""

from conftest import run_once, show

from repro.bench.experiments import fig9


def test_fig9_throughput_and_memory(benchmark):
    throughput, memory = run_once(
        benchmark, fig9,
        sizes=(4 << 10, 64 << 10, 1 << 20), scale=0.35)
    show([throughput, memory])

    # Fig 9(a): MQ designs gain from larger messages — 64 KiB must beat
    # 4 KiB for the Send/Receive RC designs.  (The RD designs follow the
    # same curve at full volume but are noisy on the reduced grid, where
    # a 1 MiB-message run transfers only a couple dozen messages.)
    for design in ("SEMQ/SR", "MEMQ/SR"):
        s = throughput.series_by_label(design)
        assert s.y[1] > s.y[0], f"{design}: 64KiB should beat 4KiB"

    # UD designs are pinned at the MTU: message size changes nothing
    # (allow measurement noise at reduced volumes).
    for design in ("MESQ/SR", "SESQ/SR"):
        s = throughput.series_by_label(design)
        assert max(s.y) < 1.35 * min(s.y)

    # Fig 9(b): registered memory grows ~linearly with message size for
    # the RC designs and stays flat (and far smaller) for UD.
    for design in ("SEMQ/SR", "MEMQ/SR"):
        m = memory.series_by_label(design)
        assert m.y[2] > 30 * m.y[0]  # grows strongly with message size
        assert m.y[2] > 50  # ~100+ MiB at 1 MiB messages
    ud = memory.series_by_label("MESQ/SR")
    assert max(ud.y) == min(ud.y)  # flat
    assert max(ud.y) < 8  # a few MiB at most
    assert memory.series_by_label("SEMQ/SR").y[2] > 20 * max(ud.y)
