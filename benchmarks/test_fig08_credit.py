"""Figure 8: flow-control (credit write-back frequency) overhead."""

from conftest import run_once, show

from repro.bench.experiments import fig8
from repro.fabric.config import EDR, FDR


def test_fig8_edr(benchmark):
    result = run_once(benchmark, fig8, EDR,
                      frequencies=(1, 2, 4, 16), scale=0.2)
    show(result)
    # Paper: "performance degradation due to the credit mechanism is not
    # very significant" — amortizing write-backs must not change any
    # Send/Receive design's throughput by more than ~25%.
    for series in result.series:
        if series.label in ("MPI", "qperf"):
            continue
        assert max(series.y) < 1.25 * min(series.y), series.label
    # The RDMA designs beat MPI at every frequency.
    mpi = result.series_by_label("MPI").y[0]
    assert max(result.series_by_label("MESQ/SR").y) > mpi


def test_fig8_fdr(benchmark):
    result = run_once(benchmark, fig8, FDR,
                      frequencies=(1, 4, 16), scale=0.2)
    show(result)
    for series in result.series:
        if series.label in ("MPI", "qperf"):
            continue
        assert max(series.y) < 1.3 * min(series.y), series.label
