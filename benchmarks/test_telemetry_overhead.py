"""Perf guard: telemetry must be cheap enough to stay on by default.

The instrumentation strategy (DESIGN.md, "Observability") keeps hot paths
to plain integer adds and harvests lazily at snapshot time, so the
default-enabled mode should cost the same wall-clock time as the global
no-op mode.  This guard fails if someone adds per-event registry or
tracer work to a hot path.
"""

import time

from repro.bench.workloads import run_repartition
from repro.cluster import Cluster
from repro.fabric.config import EDR, ClusterConfig
from repro.telemetry import set_enabled

MIB = 1 << 20
ROUNDS = 5


def _shuffle_seconds(report: bool = False) -> float:
    cluster = Cluster(ClusterConfig(network=EDR, num_nodes=4))
    if report:
        cluster.enable_reporting()
    t0 = time.perf_counter()
    run_repartition(cluster, "MESQ/SR", bytes_per_node=24 * MIB)
    return time.perf_counter() - t0


def test_enabled_mode_within_10pct_of_noop(benchmark):
    enabled_times, disabled_times = [], []
    try:
        # Interleave rounds so machine noise hits both modes equally;
        # min-of-N is the standard low-noise wall-clock estimator.
        for _ in range(ROUNDS):
            set_enabled(True)
            enabled_times.append(_shuffle_seconds())
            set_enabled(False)
            disabled_times.append(_shuffle_seconds())
    finally:
        set_enabled(True)
    enabled, disabled = min(enabled_times), min(disabled_times)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    benchmark.extra_info["enabled_s"] = round(enabled, 4)
    benchmark.extra_info["disabled_s"] = round(disabled, 4)
    assert enabled <= 1.10 * disabled, (
        f"default-enabled telemetry is {enabled / disabled:.2f}x the "
        f"no-op mode ({enabled:.3f}s vs {disabled:.3f}s); hot paths must "
        "stay at plain integer adds"
    )


def test_link_recording_overhead_is_bounded(benchmark):
    """Opt-in link recording (``--report``) may cost something — it
    appends a record per WR, pipe interval and stall — but it must stay
    a small constant factor, never change complexity class.  The off
    branch (``links is None``) is covered by the 10% guard above."""
    recording_times, baseline_times = [], []
    try:
        for _ in range(ROUNDS):
            set_enabled(True)
            recording_times.append(_shuffle_seconds(report=True))
            baseline_times.append(_shuffle_seconds(report=False))
    finally:
        set_enabled(True)
    recording, baseline = min(recording_times), min(baseline_times)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    benchmark.extra_info["recording_s"] = round(recording, 4)
    benchmark.extra_info["baseline_s"] = round(baseline, 4)
    assert recording <= 2.0 * baseline, (
        f"link recording is {recording / baseline:.2f}x the default mode "
        f"({recording:.3f}s vs {baseline:.3f}s); recording sites must stay "
        "append-only"
    )
