"""Figure 12 + §5.1.5: RDMA connection setup cost."""

from conftest import run_once, show

from repro.bench.experiments import fig12, setup_crossover_mb


def test_fig12_connection_time(benchmark):
    result = run_once(benchmark, fig12, node_counts=(2, 4, 8, 16))
    show(result)
    # MQ designs grow linearly with the cluster; SQ designs stay stable.
    for design in ("MEMQ/SR", "MEMQ/RD", "SEMQ/SR", "SEMQ/RD"):
        s = result.series_by_label(design)
        assert s.y[-1] > 3 * s.y[0], f"{design} should grow with n"
    for design in ("MESQ/SR", "SESQ/SR"):
        s = result.series_by_label(design)
        assert s.y[-1] < 1.5 * s.y[0], f"{design} should stay stable"
    # Paper: "the set up time for the MESQ/SR algorithm stays stable at
    # less than 40 ms when scaling out".
    assert max(result.series_by_label("MESQ/SR").y) < 40.0
    # ME designs take longer than their SE counterparts.
    assert result.value("MEMQ/SR", 16) > result.value("SEMQ/SR", 16)


def test_setup_crossover(benchmark):
    """§5.1.5: queries shuffling as little as a few hundred MB with
    MESQ/SR beat IPoIB even when connections are built at runtime."""
    crossover = run_once(benchmark, setup_crossover_mb, scale=0.4)
    print(f"\nMESQ/SR-vs-IPoIB crossover with runtime setup: "
          f"{crossover:.0f} MB (paper: ~250 MB)")
    assert crossover < 1000.0
