"""Extension: MESQ/SR with native InfiniBand multicast (§7 future work #3).

Quantifies the paper's hypothesis: hardware multicast should cut the
sender's CPU and port load during broadcast while sustaining the same
receive throughput.
"""

from conftest import run_once, show

from repro.bench.report import ExperimentResult, Series
from repro.bench.workloads import run_broadcast
from repro.cluster import Cluster
from repro.fabric.config import EDR, ClusterConfig

MIB = 1 << 20


def compare():
    node_counts = (4, 8, 16)
    thr = {"MESQ/SR": [], "MESQ/SR+MC": []}
    egress_gb = {"MESQ/SR": [], "MESQ/SR+MC": []}
    for nodes in node_counts:
        for design in thr:
            cluster = Cluster(ClusterConfig(network=EDR, num_nodes=nodes))
            result = run_broadcast(
                cluster, design,
                bytes_per_node=max(1, 12 // (nodes - 1)) * MIB)
            thr[design].append(result.receive_throughput_gib_per_node())
            egress_gb[design].append(sum(
                n.nic.egress.total_units for n in cluster.nodes) / 1e9)
    return ExperimentResult(
        experiment="extension-multicast",
        title="Broadcast with native InfiniBand multicast (EDR)",
        x_label="nodes", x=list(node_counts),
        y_label="GiB/s per node | total egress GB",
        series=[
            Series("MESQ/SR (GiB/s)", thr["MESQ/SR"]),
            Series("MESQ/SR+MC (GiB/s)", thr["MESQ/SR+MC"]),
            Series("MESQ/SR egress (GB)", egress_gb["MESQ/SR"]),
            Series("MESQ/SR+MC egress (GB)", egress_gb["MESQ/SR+MC"]),
        ],
    )


def test_multicast_extension(benchmark):
    result = run_once(benchmark, compare)
    show(result)
    for i, nodes in enumerate(result.x):
        base_thr = result.series_by_label("MESQ/SR (GiB/s)").y[i]
        mc_thr = result.series_by_label("MESQ/SR+MC (GiB/s)").y[i]
        base_tx = result.series_by_label("MESQ/SR egress (GB)").y[i]
        mc_tx = result.series_by_label("MESQ/SR+MC egress (GB)").y[i]
        # Throughput at least matches the software broadcast...
        assert mc_thr > 0.9 * base_thr, nodes
        # ...with egress traffic cut by roughly the group fanout.
        assert mc_tx < 1.8 * base_tx / (nodes - 1), nodes
