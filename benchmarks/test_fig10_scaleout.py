"""Figure 10: repartition/broadcast throughput when scaling out.

The headline result: MESQ/SR scales flat on both generations while the
many-Queue-Pair designs degrade on FDR at 16 nodes; the RDMA designs beat
MPI and IPoIB throughout.
"""

from conftest import run_once, show

from repro.bench.experiments import fig10
from repro.fabric.config import EDR, FDR


def test_fig10_scaleout(benchmark):
    results = run_once(benchmark, fig10,
                       networks=(FDR, EDR),
                       node_counts=(2, 8, 16), scale=0.2)
    show(results)
    by_name = {r.experiment: r for r in results}

    # Fig 10(a) FDR repartition: ME MQ designs collapse at 16 nodes
    # (QP-context cache thrash); MESQ/SR stays near its 8-node level.
    fdr = by_name["fig10a"]
    memq_sr = fdr.series_by_label("MEMQ/SR")
    memq_rd = fdr.series_by_label("MEMQ/RD")
    mesq = fdr.series_by_label("MESQ/SR")
    assert memq_sr.y[2] < 0.7 * memq_sr.y[1], "MQ/SR should degrade at 16"
    assert memq_rd.y[2] < 0.7 * memq_rd.y[1], "MQ/RD should degrade at 16"
    assert mesq.y[2] > 0.85 * mesq.y[1], "MESQ/SR should hold at 16"
    assert mesq.y[2] > 1.5 * memq_sr.y[2]

    # Fig 10(c) EDR repartition: no MQ collapse (bigger context cache),
    # and the RDMA designs beat MPI and IPoIB by a wide margin at scale.
    edr = by_name["fig10c"]
    assert edr.series_by_label("MEMQ/SR").y[2] > \
        0.6 * edr.series_by_label("MEMQ/SR").y[1]
    mesq_16 = edr.series_by_label("MESQ/SR").y[2]
    assert mesq_16 > 1.5 * edr.series_by_label("MPI").y[2]
    assert mesq_16 > 2.0 * edr.series_by_label("IPoIB").y[2]

    # Fig 10(b,d) broadcast: the RDMA Read designs fall behind the
    # Send/Receive designs (buffer reuse waits for the slowest reader).
    for panel in ("fig10b", "fig10d"):
        bc = by_name[panel]
        assert bc.series_by_label("SEMQ/SR").y[1] > \
            bc.series_by_label("SEMQ/RD").y[1]

    # qperf bounds every algorithm's repartition throughput (approx).
    for panel in ("fig10a", "fig10c"):
        r = by_name[panel]
        qperf = r.series_by_label("qperf").y[0]
        for s in r.series:
            if s.label == "qperf":
                continue
            assert max(s.y) <= 1.15 * qperf, s.label
