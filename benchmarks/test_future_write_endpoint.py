"""Extension: the RDMA Write endpoint (the paper's §7 future work).

Compares the Write-based one-sided endpoint against the paper's
Read-based one on both communication patterns.  The interesting result:
Write does not inherit Read's broadcast weakness, because each receiver
owns its own destination buffers — there is no single sender buffer whose
reuse waits on the slowest reader.
"""

from conftest import run_once, show

from repro.bench.report import ExperimentResult, Series
from repro.bench.workloads import run_broadcast, run_repartition
from repro.cluster import Cluster
from repro.fabric.config import EDR, ClusterConfig

MIB = 1 << 20


def compare():
    designs = ("MEMQ/RD", "MEMQ/WR", "SEMQ/RD", "SEMQ/WR")
    rep, bc = [], []
    for design in designs:
        cluster = Cluster(ClusterConfig(network=EDR, num_nodes=8))
        rep.append(run_repartition(
            cluster, design,
            bytes_per_node=36 * MIB).receive_throughput_gib_per_node())
        cluster = Cluster(ClusterConfig(network=EDR, num_nodes=8))
        bc.append(run_broadcast(
            cluster, design,
            bytes_per_node=5 * MIB).receive_throughput_gib_per_node())
    return ExperimentResult(
        experiment="future-work-write",
        title="One-sided endpoints: RDMA Read vs RDMA Write (EDR, 8 nodes)",
        x_label="design", x=list(designs),
        y_label="receive throughput per node (GiB/s)",
        series=[Series("repartition", rep), Series("broadcast", bc)],
    )


def test_write_vs_read_endpoint(benchmark):
    result = run_once(benchmark, compare)
    show(result)
    # Write at least matches Read on repartition...
    assert result.value("repartition", "MEMQ/WR") > \
        0.9 * result.value("repartition", "MEMQ/RD")
    # ...and clearly beats it on broadcast (no shared-buffer starvation).
    assert result.value("broadcast", "MEMQ/WR") > \
        1.1 * result.value("broadcast", "MEMQ/RD")


def test_write_vs_read_broadcast_value(benchmark):
    """Hypothesis from §7 quantified for the summary table."""
    def ratio():
        cluster = Cluster(ClusterConfig(network=EDR, num_nodes=8))
        wr = run_broadcast(cluster, "SEMQ/WR", bytes_per_node=5 * MIB)
        cluster = Cluster(ClusterConfig(network=EDR, num_nodes=8))
        rd = run_broadcast(cluster, "SEMQ/RD", bytes_per_node=5 * MIB)
        return (wr.receive_throughput_gib_per_node() /
                rd.receive_throughput_gib_per_node())

    speedup = run_once(benchmark, ratio)
    print(f"\nSEMQ/WR over SEMQ/RD broadcast speedup: {speedup:.2f}x")
    assert speedup > 1.1
