"""Ablation: the NIC Queue-Pair context cache.

Isolates the mechanism DESIGN.md and the paper ([8,16,17]) hold
responsible for the many-Queue-Pair designs' collapse on FDR at 16 nodes:
re-run MEMQ/SR with the context cache disabled (infinite cache) and show
the degradation disappears.
"""

from conftest import run_once, show

from repro.bench.report import ExperimentResult, Series
from repro.bench.workloads import run_repartition
from repro.cluster import Cluster
from repro.fabric.config import FDR, ClusterConfig

MIB = 1 << 20


def _throughput(nodes: int, disable_cache: bool) -> float:
    cluster = Cluster(ClusterConfig(network=FDR, num_nodes=nodes))
    for node in cluster.nodes:
        node.nic.disable_qp_cache = disable_cache
    result = run_repartition(cluster, "MEMQ/SR", bytes_per_node=36 * MIB)
    return result.receive_throughput_gib_per_node()


def ablate():
    node_counts = (8, 16)
    with_cache = [_throughput(n, disable_cache=False) for n in node_counts]
    without = [_throughput(n, disable_cache=True) for n in node_counts]
    return ExperimentResult(
        experiment="ablation-qp-cache",
        title="MEMQ/SR on FDR with and without the QP context-cache limit",
        x_label="nodes", x=list(node_counts),
        y_label="receive throughput per node (GiB/s)",
        series=[Series("finite cache (real NIC)", with_cache),
                Series("infinite cache (ablated)", without)],
    )


def test_qp_cache_ablation(benchmark):
    result = run_once(benchmark, ablate)
    show(result)
    real = result.series_by_label("finite cache (real NIC)")
    ablated = result.series_by_label("infinite cache (ablated)")
    # With the real cache, 16 nodes collapse; without it, they don't.
    assert real.y[1] < 0.7 * real.y[0]
    assert ablated.y[1] > 0.85 * ablated.y[0]
    assert ablated.y[1] > 1.5 * real.y[1]
