"""Ablation: the NIC Queue-Pair context cache.

Isolates the mechanism DESIGN.md and the paper ([8,16,17]) hold
responsible for the many-Queue-Pair designs' collapse on FDR at 16 nodes:
re-run MEMQ/SR with the context cache disabled (infinite cache) and show
the degradation disappears.  The telemetry layer surfaces the cache's
hit/miss counters directly, attributing the collapse to PCIe round trips
rather than inferring it from throughput alone.
"""

from conftest import run_once, show

from repro.bench.report import ExperimentResult, Series
from repro.bench.workloads import run_repartition
from repro.cluster import Cluster
from repro.fabric.config import FDR, ClusterConfig
from repro.telemetry import nic_cache_stats

MIB = 1 << 20


def _measure(nodes: int, disable_cache: bool):
    """One run; returns (throughput GiB/s, aggregate QP-cache stats)."""
    cluster = Cluster(ClusterConfig(network=FDR, num_nodes=nodes))
    for node in cluster.nodes:
        node.nic.disable_qp_cache = disable_cache
    result = run_repartition(cluster, "MEMQ/SR", bytes_per_node=36 * MIB)
    return result.receive_throughput_gib_per_node(), nic_cache_stats(cluster)


def ablate():
    node_counts = (8, 16)
    with_cache, without, miss_rates, stall_ms = [], [], [], []
    for n in node_counts:
        thr, stats = _measure(n, disable_cache=False)
        with_cache.append(thr)
        miss_rates.append(100.0 * stats["miss_rate"])
        stall_ms.append(stats["pcie_stall_ns"] / 1e6)
        thr, _ = _measure(n, disable_cache=True)
        without.append(thr)
    cache_note = "; ".join(
        f"{n} nodes: miss {m:.1f}%, pcie-stall {s:.1f}ms"
        for n, m, s in zip(node_counts, miss_rates, stall_ms))
    return ExperimentResult(
        experiment="ablation-qp-cache",
        title="MEMQ/SR on FDR with and without the QP context-cache limit",
        x_label="nodes", x=list(node_counts),
        y_label="receive throughput per node (GiB/s)",
        series=[Series("finite cache (real NIC)", with_cache),
                Series("infinite cache (ablated)", without),
                Series("miss rate (%)", miss_rates)],
        notes=f"finite-cache runs: {cache_note}",
    )


def test_qp_cache_ablation(benchmark):
    result = run_once(benchmark, ablate)
    show(result)
    real = result.series_by_label("finite cache (real NIC)")
    ablated = result.series_by_label("infinite cache (ablated)")
    misses = result.series_by_label("miss rate (%)")
    # With the real cache, 16 nodes collapse; without it, they don't.
    assert real.y[1] < 0.7 * real.y[0]
    assert ablated.y[1] > 0.85 * ablated.y[0]
    assert ablated.y[1] > 1.5 * real.y[1]
    # The telemetry explains the collapse: at 16 nodes the per-operator
    # QP count exceeds the context cache and the miss rate jumps.
    assert misses.y[1] > misses.y[0]
    assert misses.y[1] > 10.0
