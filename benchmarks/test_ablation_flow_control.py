"""Ablation: buffer depth (double vs deeper buffering) in flow control.

DESIGN.md calls out the buffers-per-connection choice as the memory /
stall trade-off behind §5.1.1-§5.1.2.  This ablation quantifies it
through the credit-stall profiling counter: a one-buffer window keeps the
sender blocked for credit, double buffering removes most of the stall,
and beyond four buffers the gains vanish while pinned memory keeps
growing linearly.
"""

from conftest import run_once, show

from repro.bench.report import ExperimentResult, Series
from repro.bench.workloads import run_repartition
from repro.cluster import Cluster
from repro.core.endpoint import EndpointConfig
from repro.fabric.config import EDR, ClusterConfig

MIB = 1 << 20


def ablate():
    depths = (1, 2, 4, 8)
    throughput, memory, stall_ms = [], [], []
    for depth in depths:
        cluster = Cluster(ClusterConfig(network=EDR, num_nodes=8))
        cfg = EndpointConfig(buffers_per_connection=depth,
                             credit_frequency=1)
        result = run_repartition(cluster, "MEMQ/SR",
                                 bytes_per_node=36 * MIB, config=cfg)
        throughput.append(result.receive_throughput_gib_per_node())
        memory.append(result.registered_bytes_per_node / MIB)
        stall_ms.append(result.send_credit_wait_ns / 1e6)
    return ExperimentResult(
        experiment="ablation-buffer-depth",
        title="MEMQ/SR on EDR: buffers per connection (window depth)",
        x_label="buffers per connection", x=list(depths),
        y_label="GiB/s | credit-stall ms | pinned MiB",
        series=[Series("throughput (GiB/s)", throughput),
                Series("credit stall (ms, all threads)", stall_ms),
                Series("pinned memory (MiB)", memory)],
    )


def test_buffer_depth_ablation(benchmark):
    result = run_once(benchmark, ablate)
    show(result)
    thr = result.series_by_label("throughput (GiB/s)").y
    stall = result.series_by_label("credit stall (ms, all threads)").y
    mem = result.series_by_label("pinned memory (MiB)").y
    # Single buffering stalls the senders; deep windows remove the
    # stall almost entirely.
    assert stall[0] > 1.2 * stall[1]
    assert stall[0] > 5 * stall[3]
    # Throughput improves from single to double buffering, then flattens
    # (diminishing returns, §5.1.2).
    assert thr[1] > 1.03 * thr[0]
    assert thr[3] < 1.1 * thr[1]
    # Pinned memory grows linearly regardless.
    assert mem[3] > 3.5 * mem[0]
