"""Ablation: leaf-spine trunk oversubscription.

The paper's evaluation platform is a single full-bisection switch (§5),
so its shuffle designs never face cross-rack contention.  This ablation
re-runs the fig10 repartition workload on a two-tier leaf-spine topology
and sweeps the trunk oversubscription factor: at 4:1 the leaf uplinks —
not the NICs — become the bottleneck, and throughput degrades for every
design.  The per-switch-port utilization recorded by the topology layer
attributes the collapse to the trunk pipes directly.
"""

import re

from conftest import run_once, show

from repro.bench.experiments import abl_oversub


def ablate():
    return abl_oversub(scale=0.25)


def test_oversubscription_ablation(benchmark):
    result = run_once(benchmark, ablate)
    show(result)
    assert result.x == [1, 2, 4]
    mesq = result.series_by_label("MESQ/SR")
    memq = result.series_by_label("MEMQ/SR")
    # 1:1 is full bisection — it must match the 2:1 run closely (with
    # 4 nodes per leaf, half the repartition traffic stays in-rack, so a
    # 2:1 trunk is still just shy of saturation) while 4:1 collapses.
    for series in (mesq, memq):
        assert series.y[1] > 0.9 * series.y[0]
        assert series.y[2] < 0.85 * series.y[0]
    # The telemetry explains the collapse: peak trunk-port utilization
    # climbs monotonically with the oversubscription factor and the
    # trunks are near saturation at 4:1.
    utils = [int(m) for m in re.findall(r"trunk util (\d+)%", result.notes)]
    assert len(utils) == 3
    assert utils[0] < utils[1] < utils[2]
    assert utils[2] > 60
