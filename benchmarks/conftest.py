"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures on a
reduced grid (smaller transfer volumes / fewer sweep points) so the whole
suite completes in minutes, prints the reproduced series in the paper's
layout, and sanity-checks the *shape* (who wins, where degradation sets
in).  Full-scale reproduction: ``repro-bench --all``.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.report import ExperimentResult, render


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark and return its value."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


#: rendered tables are also appended here, because pytest captures (and,
#: for passing tests, discards) stdout; this file keeps the reproduced
#: rows/series of every figure from the latest benchmark run.
RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results.txt")


def show(result) -> None:
    """Print one or many ExperimentResults and persist them."""
    if isinstance(result, ExperimentResult):
        result = [result]
    for item in result:
        text = render(item)
        print()
        print(text)
        with open(RESULTS_PATH, "a") as fh:
            fh.write(text + "\n\n")
