"""Figure 13: performance under compute-intensive receiving fragments."""

from conftest import run_once, show

from repro.bench.experiments import fig13


def test_fig13_compute_overlap(benchmark):
    result = run_once(benchmark, fig13,
                      compute_us=(0.0, 15.0, 40.0), scale=0.15)
    show(result)
    # Network-bound on the left: nobody overlaps fully at zero compute.
    for s in result.series:
        assert s.y[0] < 60.0, s.label
    # As compute grows, the bespoke RDMA designs hide communication
    # almost completely; MESQ/SR reaches peak overlap earliest (§5.1.6).
    mesq_40 = result.value("MESQ/SR", 40.0)
    # (full-scale runs reach ~91%; reduced volumes are warmup-deflated)
    assert mesq_40 > 70.0
    assert result.value("MESQ/SR", 15.0) > 2.5 * result.value("MESQ/SR", 0.0)
    # MPI fails to overlap communication and computation (§5.1.6); IPoIB
    # tops out early too.
    assert result.value("MPI", 40.0) < 0.7 * mesq_40
    assert result.value("IPoIB", 40.0) < 0.85 * mesq_40
    # Every curve is monotone increasing in compute intensity.
    for s in result.series:
        assert s.y == sorted(s.y), s.label
