"""Kernel hot-path throughput: events/sec, packets/sec, fig8 wall-clock.

The same measurement functions back ``repro-bench --kernel-bench`` (the
``BENCH_kernel.json`` trajectory) and this pytest-benchmark suite; here
each one runs under pytest-benchmark so local ``--benchmark-compare``
workflows see the kernel alongside the figure benchmarks.  The CI gate
lives in the ``perf`` job: fresh measurements against the committed
``BENCH_kernel.json`` via ``python -m repro.bench.compare``.
"""

from conftest import run_once

from repro.bench.kernel import (
    bench_dispatch_events,
    bench_fabric_packets,
    bench_fig8_wall_clock,
    bench_process_wakeups,
    bench_train_events,
)


def test_dispatch_events_per_sec(benchmark):
    result = run_once(benchmark, bench_dispatch_events, num_events=150_000)
    assert result["detail"]["events"] >= 150_000
    assert result["value"] > 0
    print(f"\nkernel dispatch: {result['value']:,.0f} events/s")


def test_process_wakeups_per_sec(benchmark):
    result = run_once(benchmark, bench_process_wakeups, num_wakeups=80_000)
    assert result["detail"]["wakeups"] >= 80_000
    assert result["value"] > 0
    print(f"\nprocess wakeups: {result['value']:,.0f} wakeups/s")


def test_fabric_packets_per_sec(benchmark):
    result = run_once(benchmark, bench_fabric_packets, num_packets=15_000)
    assert result["detail"]["packets"] == 15_000
    assert result["value"] > 0
    print(f"\nfabric routing: {result['value']:,.0f} packets/s")


def test_train_event_reduction(benchmark):
    """The headline of the train abstraction: a 1 MiB RC message (a
    256-packet train at the 4 KiB MTU) must cost >= 20x fewer fabric
    events than the per-packet oracle charges for it."""
    result = run_once(benchmark, bench_train_events, num_messages=500)
    detail = result["detail"]
    assert detail["n_packets"] == 256
    assert detail["event_reduction"] >= 20.0, \
        f"train path saves only {detail['event_reduction']}x events"
    assert result["value"] > 0
    print(f"\ntrain path: {result['value']:,.0f} events/s, "
          f"{detail['event_reduction']:.1f}x fewer events than per-packet")


def test_fig8_wall_clock(benchmark):
    result = run_once(benchmark, bench_fig8_wall_clock, scale=0.02)
    assert result["value"] > 0
    print(f"\nfig8 (scale 0.02): {result['value']:.2f}s wall clock")
