"""Repo-root pytest config: make ``src`` importable and load the
repro.analysis lint plugin (adds the ``--repro-lint`` option)."""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))

pytest_plugins = ("repro.analysis.pytest_plugin",)
