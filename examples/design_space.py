#!/usr/bin/env python
"""Explore the shuffle design space (the paper's Figure 2 / Table 1).

Sweeps the two orthogonal design dimensions — endpoints per operator and
endpoint implementation — across both network generations and cluster
sizes, then prints a compact scorecard: throughput, Queue Pairs, pinned
memory and connection-setup time for every design.  This is the
at-a-glance version of the paper's whole evaluation story: MESQ/SR is
never far from the best throughput while using the fewest resources.

Run:  python examples/design_space.py  (takes a couple of minutes)
"""

from repro import Cluster, ClusterConfig, EDR, FDR
from repro.bench.workloads import run_repartition

MIB = 1 << 20
DESIGNS = ["MEMQ/SR", "MEMQ/RD", "MESQ/SR", "SEMQ/SR", "SEMQ/RD", "SESQ/SR"]


def main() -> None:
    for network, nodes in ((EDR, 8), (FDR, 16)):
        print(f"\n=== {network.name} InfiniBand, {nodes} nodes ===")
        print(f"{'design':8s} {'GiB/s/node':>10s} {'QPs':>5s} "
              f"{'pinned MiB':>10s} {'setup ms':>9s}")
        for design in DESIGNS:
            volume = (8 if design.endswith('SQ/SR') else 32) * MIB
            cluster = Cluster(ClusterConfig(network=network,
                                            num_nodes=nodes))
            result = run_repartition(cluster, design,
                                     bytes_per_node=volume)
            print(f"{design:8s} "
                  f"{result.receive_throughput_gib_per_node():10.2f} "
                  f"{result.qps_per_node:5d} "
                  f"{result.registered_bytes_per_node / MIB:10.2f} "
                  f"{result.setup_ns / 1e6:9.2f}")


if __name__ == "__main__":
    main()
