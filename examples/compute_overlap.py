#!/usr/bin/env python
"""Communication/computation overlap (the paper's Figure 13 story).

Makes the receiving query fragment progressively more compute intensive
and reports how much of the receiver threads' time is spent doing useful
work rather than waiting for data.  The bespoke RDMA endpoints approach
100% (communication fully hidden); MPI cannot, because its progress
engine only runs while a thread sits inside an MPI call.

Run:  python examples/compute_overlap.py
"""

from repro import Cluster, ClusterConfig, EDR
from repro.bench.workloads import run_repartition

MIB = 1 << 20


def main() -> None:
    designs = ("MESQ/SR", "SEMQ/RD", "MPI", "IPoIB")
    print(f"{'compute/32KiB':>13s}  " +
          "  ".join(f"{d:>8s}" for d in designs))
    for compute_us in (0.0, 5.0, 15.0, 40.0):
        row = [f"{compute_us:10.1f} us"]
        for design in designs:
            cluster = Cluster(ClusterConfig(network=EDR, num_nodes=4))
            result = run_repartition(
                cluster, design, bytes_per_node=8 * MIB,
                compute_ns_per_batch=compute_us * 1000.0,
                receive_output_bytes=32 * 1024)
            row.append(f"{100 * result.receiver_busy_fraction():7.1f}%")
        print("  ".join(row))
    print("\n100% = communication completely hidden behind computation")


if __name__ == "__main__":
    main()
