#!/usr/bin/env python
"""Run distributed TPC-H queries and validate against a reference.

Generates a TPC-H database, scatters every table's tuples to random
nodes (NATION replicated), executes Q3, Q4 and Q10 through the full
distributed engine — scans, shuffles, hash joins, partial and final
aggregation — and checks each answer against a single-node numpy
reference.  Compares MESQ/SR against the MPI baseline.

Run:  python examples/tpch_query.py
"""

from repro import Cluster, ClusterConfig, EDR
from repro.tpch import generate, reference_answer, run_query

NODES = 4
SCALE_FACTOR = 0.02


def verify(answer, reference, tol=1e-6) -> bool:
    if set(answer) != set(reference):
        return False
    return all(abs(answer[k] - reference[k]) <= tol * max(1.0, abs(answer[k]))
               for k in answer)


def main() -> None:
    print(f"TPC-H SF={SCALE_FACTOR} on {NODES} simulated EDR nodes")
    data = generate(SCALE_FACTOR, NODES, seed=7)
    print(f"  orders={len(data.orders):,}  lineitem={len(data.lineitem):,}  "
          f"customer={len(data.customer):,}\n")
    for query in ("Q3", "Q4", "Q10"):
        reference = reference_answer(query, data)
        row = [f"{query}:"]
        for design in ("MESQ/SR", "MPI"):
            cluster = Cluster(ClusterConfig(network=EDR, num_nodes=NODES,
                                            threads_per_node=4))
            result = run_query(cluster, query, data, design=design)
            ok = "ok" if verify(result.answer, reference) else "WRONG"
            row.append(f"{design} {result.response_time_ms():7.2f} ms "
                       f"[{ok}]")
        row.append(f"({len(reference)} groups)")
        print("  " + "   ".join(row))


if __name__ == "__main__":
    main()
