#!/usr/bin/env python
"""Quickstart: shuffle a table across a simulated EDR InfiniBand cluster.

Builds an 8-node cluster, wires the paper's headline design (MESQ/SR —
RDMA Send/Receive over Unreliable Datagram, one endpoint per thread),
repartitions a synthetic table, and prints the per-node receive
throughput alongside the MPI baseline.

Run:  python examples/quickstart.py
"""

from repro import Cluster, ClusterConfig, EDR
from repro.bench.workloads import run_repartition

MIB = 1 << 20


def main() -> None:
    for design in ("MESQ/SR", "SESQ/SR", "MEMQ/SR", "MPI"):
        cluster = Cluster(ClusterConfig(network=EDR, num_nodes=8))
        result = run_repartition(cluster, design, bytes_per_node=16 * MIB)
        print(f"{design:8s}  {result.receive_throughput_gib_per_node():6.2f} "
              f"GiB/s per node   "
              f"(shuffled {result.total_received_rows:,} tuples in "
              f"{result.response_time_ms():.2f} simulated ms, "
              f"{result.qps_per_node} QPs/node, "
              f"{result.registered_bytes_per_node / MIB:.1f} MiB pinned)")


if __name__ == "__main__":
    main()
